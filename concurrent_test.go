package segdb

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"segdb/internal/tiger"
)

// stressSpec is a small county (~1k segments): large enough that every
// structure has real depth, small enough that six kinds × two replicas
// build quickly under the race detector.
var stressSpec = tiger.Spec{
	Name: "stress", Kind: tiger.Rural, Seed: 777,
	Lattice: 8, SubdivMin: 4, SubdivMax: 8, DeleteFrac: 0.1,
}

func stressMap(t testing.TB) *MapData {
	t.Helper()
	m, err := tiger.Generate(stressSpec)
	if err != nil {
		t.Fatal(err)
	}
	return &MapData{Name: stressSpec.Name, Class: "rural", Segments: m.Segments}
}

// stressOp is one query of the mixed workload. kind: 0 window, 1 nearest,
// 2 enclosing polygon.
type stressOp struct {
	kind int
	rect Rect
	pt   Point
}

func stressOps(n int, seed int64) []stressOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]stressOp, n)
	for i := range ops {
		p := Pt(rng.Int31n(WorldSize), rng.Int31n(WorldSize))
		switch i % 3 {
		case 0:
			w := rng.Int31n(WorldSize/8) + 16
			ops[i] = stressOp{kind: 0, rect: RectOf(p.X, p.Y, min32(p.X+w, WorldSize-1), min32(p.Y+w, WorldSize-1))}
		case 1:
			ops[i] = stressOp{kind: 1, pt: p}
		case 2:
			ops[i] = stressOp{kind: 2, pt: p}
		}
	}
	return ops
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// runStressOp executes one op via the v2 query API and summarizes its
// result as a string, so concurrent and sequential runs can be compared
// op-for-op; the per-query stats come back alongside so the test can
// reconcile their sum against the global counters.
func runStressOp(db *DB, op stressOp) (string, QueryStats, error) {
	ctx := context.Background()
	switch op.kind {
	case 0:
		var ids []SegmentID
		st, err := db.WindowCtx(ctx, op.rect, func(id SegmentID, _ Segment) bool {
			ids = append(ids, id)
			return true
		})
		if err != nil {
			return "", st, err
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return fmt.Sprintf("window:%v", ids), st, nil
	case 1:
		res, st, err := db.NearestCtx(ctx, op.pt)
		if err != nil {
			return "", st, err
		}
		return fmt.Sprintf("nearest:%v/%v/%v", res.Found, res.ID, res.DistSq), st, nil
	default:
		poly, st, err := db.EnclosingPolygonCtx(ctx, op.pt)
		if err != nil {
			return "", st, err
		}
		return fmt.Sprintf("polygon:%d", poly.Size()), st, nil
	}
}

// TestConcurrentQueryStress runs a mixed Window/Nearest/EnclosingPolygon
// workload from 8 goroutines against each index kind and checks that (a)
// every query returns exactly the sequential answer and (b) the
// interleaving-independent totals — segment comparisons, bounding box
// computations, and buffer-pool page requests — match a sequential replay
// on an identically built database. (The hit/miss split of those page
// requests legitimately depends on scheduling and is not compared.)
func TestConcurrentQueryStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	m := stressMap(t)
	ops := stressOps(96, 4321)
	const workers = 8
	for _, k := range allKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			seqDB, err := Open(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			conDB, err := Open(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := seqDB.Load(m); err != nil {
				t.Fatal(err)
			}
			if _, err := conDB.Load(m); err != nil {
				t.Fatal(err)
			}

			// Sequential replay.
			seqBase := seqDB.Metrics()
			want := make([]string, len(ops))
			for i, op := range ops {
				want[i], _, err = runStressOp(seqDB, op)
				if err != nil {
					t.Fatalf("sequential op %d: %v", i, err)
				}
			}
			seqDelta := seqDB.Metrics().Sub(seqBase)

			// Concurrent run: 8 goroutines claim ops from a shared cursor,
			// keeping each op's QueryStats for reconciliation below.
			conBase := conDB.Metrics()
			got := make([]string, len(ops))
			perQuery := make([]QueryStats, len(ops))
			var (
				next atomic.Int64
				wg   sync.WaitGroup
			)
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(ops) {
							return
						}
						s, st, err := runStressOp(conDB, ops[i])
						if err != nil {
							errs[w] = fmt.Errorf("op %d: %w", i, err)
							return
						}
						got[i] = s
						perQuery[i] = st
					}
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			conDelta := conDB.Metrics().Sub(conBase)

			for i := range ops {
				if got[i] != want[i] {
					t.Errorf("op %d: concurrent %q, sequential %q", i, got[i], want[i])
				}
			}
			if conDelta.SegComps != seqDelta.SegComps {
				t.Errorf("segment comparisons: concurrent %d, sequential %d",
					conDelta.SegComps, seqDelta.SegComps)
			}
			if conDelta.NodeComps != seqDelta.NodeComps {
				t.Errorf("bbox computations: concurrent %d, sequential %d",
					conDelta.NodeComps, seqDelta.NodeComps)
			}
			if conDelta.PoolRequests != seqDelta.PoolRequests {
				t.Errorf("pool requests: concurrent %d, sequential %d",
					conDelta.PoolRequests, seqDelta.PoolRequests)
			}

			// Per-query attribution is exact: the sum of the 96 QueryStats
			// equals the global counter deltas of the concurrent run, for
			// every interleaving-independent total.
			var sum QueryStats
			for _, st := range perQuery {
				sum = sum.Add(st)
			}
			if sum.SegComps != conDelta.SegComps {
				t.Errorf("sum of per-query SegComps %d != global delta %d",
					sum.SegComps, conDelta.SegComps)
			}
			if sum.NodeComps != conDelta.NodeComps {
				t.Errorf("sum of per-query NodeComps %d != global delta %d",
					sum.NodeComps, conDelta.NodeComps)
			}
			if sum.PoolRequests != conDelta.PoolRequests {
				t.Errorf("sum of per-query PoolRequests %d != global delta %d",
					sum.PoolRequests, conDelta.PoolRequests)
			}
		})
	}
}

// TestWindowBatch checks the parallel batch executor returns exactly the
// union of per-rectangle sequential window results, at several
// parallelism settings, and that cancellation stops the batch.
func TestWindowBatch(t *testing.T) {
	m := stressMap(t)
	db, err := Open(RStarTree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadPacked(m); err != nil {
		t.Fatal(err)
	}
	ops := stressOps(30, 99)
	var rects []Rect
	for _, op := range ops {
		if op.kind == 0 {
			rects = append(rects, op.rect)
		}
	}

	want := make([][]SegmentID, len(rects))
	for q, r := range rects {
		db.Window(r, func(id SegmentID, _ Segment) bool {
			want[q] = append(want[q], id)
			return true
		})
		sort.Slice(want[q], func(i, j int) bool { return want[q][i] < want[q][j] })
	}

	for _, par := range []int{0, 1, 3, 8} {
		got := make([][]SegmentID, len(rects))
		var mu sync.Mutex
		err := db.WindowBatch(rects, par, func(q int, id SegmentID, _ Segment) bool {
			mu.Lock()
			got[q] = append(got[q], id)
			mu.Unlock()
			return true
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for q := range rects {
			sort.Slice(got[q], func(i, j int) bool { return got[q][i] < got[q][j] })
			if fmt.Sprint(got[q]) != fmt.Sprint(want[q]) {
				t.Fatalf("parallelism %d, query %d: got %v, want %v", par, q, got[q], want[q])
			}
		}
	}

	// Cancellation: stop after the first visit; the batch must end
	// without error and without visiting everything.
	var visited atomic.Int64
	if err := db.WindowBatch(rects, 4, func(int, SegmentID, Segment) bool {
		visited.Add(1)
		return false
	}); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, w := range want {
		total += len(w)
	}
	if n := int(visited.Load()); n >= total {
		t.Fatalf("cancelled batch visited all %d results", n)
	}

	// An empty batch is a no-op.
	if err := db.WindowBatch(nil, 4, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOverlayParallel checks the fanned-out join finds exactly the pairs
// of the sequential Overlay, for both the nested-loop path and (at
// parallelism 1) the PMR merge path, and that cancellation works.
func TestOverlayParallel(t *testing.T) {
	m := stressMap(t)
	// A second map shifted so the two genuinely intersect.
	m2 := stressMap(t)
	half := len(m2.Segments) / 2
	m2 = &MapData{Name: "stress-b", Class: "rural", Segments: m2.Segments[half:]}

	for _, kinds := range [][2]Kind{{RStarTree, UniformGrid}, {PMRQuadtree, PMRQuadtree}} {
		a, err := Open(kinds[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Open(kinds[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Load(m); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Load(m2); err != nil {
			t.Fatal(err)
		}

		pairKey := func(idA, idB SegmentID) string { return fmt.Sprintf("%v-%v", idA, idB) }
		want := map[string]bool{}
		if err := a.Overlay(b, func(idA, idB SegmentID, _, _ Segment) bool {
			want[pairKey(idA, idB)] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("%v/%v: overlay found no pairs; bad fixture", kinds[0], kinds[1])
		}

		for _, par := range []int{1, 4} {
			got := map[string]bool{}
			var mu sync.Mutex
			err := a.OverlayParallel(b, par, func(idA, idB SegmentID, _, _ Segment) bool {
				mu.Lock()
				got[pairKey(idA, idB)] = true
				mu.Unlock()
				return true
			})
			if err != nil {
				t.Fatalf("%v/%v parallelism %d: %v", kinds[0], kinds[1], par, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v/%v parallelism %d: %d pairs, want %d",
					kinds[0], kinds[1], par, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("%v/%v parallelism %d: missing pair %s", kinds[0], kinds[1], par, k)
				}
			}
		}

		// Cancellation propagates as a clean stop, not an error.
		calls := 0
		var mu sync.Mutex
		if err := a.OverlayParallel(b, 4, func(SegmentID, SegmentID, Segment, Segment) bool {
			mu.Lock()
			calls++
			mu.Unlock()
			return false
		}); err != nil {
			t.Fatalf("cancelled overlay: %v", err)
		}
		if calls >= len(want) && len(want) > 4 {
			t.Fatalf("cancelled overlay still visited %d of %d pairs", calls, len(want))
		}
	}
}

// TestConcurrentMetricsReaders checks Metrics() can be called while
// queries are in flight (the counters are atomic), without tripping the
// race detector.
func TestConcurrentMetricsReaders(t *testing.T) {
	m := stressMap(t)
	db, err := Open(PMRQuadtree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(m); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = db.Metrics()
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := db.Nearest(Pt(int32(i*700%WorldSize), 5000)); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	mtr := db.Metrics()
	if mtr.PoolRequests < mtr.PoolHits {
		t.Fatalf("requests %d < hits %d", mtr.PoolRequests, mtr.PoolHits)
	}
	if mtr.HitRatio() < 0 || mtr.HitRatio() > 1 {
		t.Fatalf("hit ratio %v out of range", mtr.HitRatio())
	}
}
