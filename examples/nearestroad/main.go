// Nearestroad compares the three structures of the paper on the workload
// that motivates spatial indexing in §1: "find the nearest subway line to
// a particular house". It loads a full synthetic county into an R*-tree,
// an R+-tree and a PMR quadtree, then runs the same batch of nearest-road
// lookups against each, printing the paper's three cost metrics.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"segdb"
)

func main() {
	county := "Anne Arundel"
	m, err := segdb.GenerateCounty(county)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s county (%s): %d road segments\n\n", m.Name, m.Class, len(m.Segments))

	// "Houses" near the road network: jittered segment endpoints.
	rng := rand.New(rand.NewSource(2026))
	houses := make([]segdb.Point, 500)
	for i := range houses {
		s := m.Segments[rng.Intn(len(m.Segments))]
		houses[i] = segdb.Pt(
			clamp(s.P1.X+int32(rng.Intn(201)-100)),
			clamp(s.P1.Y+int32(rng.Intn(201)-100)))
	}

	kinds := []segdb.Kind{segdb.RStarTree, segdb.RPlusTree, segdb.PMRQuadtree}
	fmt.Printf("%-14s | %10s %12s | %10s %10s %12s\n",
		"index", "build", "size KB", "disk/q", "segcmp/q", "query time")
	for _, kind := range kinds {
		db, err := segdb.Open(kind)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := db.Load(m); err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(start)

		var sumDist float64
		start = time.Now()
		cost, err := db.Measure(func() error {
			for _, h := range houses {
				res, err := db.Nearest(h)
				if err != nil {
					return err
				}
				sumDist += math.Sqrt(res.DistSq)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		queryTime := time.Since(start)

		n := float64(len(houses))
		fmt.Printf("%-14v | %10v %12d | %10.2f %10.2f %12v\n",
			kind, buildTime.Round(time.Millisecond), db.IndexSizeBytes()/1024,
			float64(cost.DiskAccesses)/n, float64(cost.SegComps)/n,
			queryTime.Round(time.Microsecond))
		_ = sumDist
	}
	fmt.Println("\n(the paper's shape: R+ builds fastest and R* slowest by ~8x;")
	fmt.Println(" for data-correlated query points the PMR quadtree does the")
	fmt.Println(" fewest disk accesses and segment comparisons)")
}

func clamp(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v >= segdb.WorldSize {
		return segdb.WorldSize - 1
	}
	return v
}
