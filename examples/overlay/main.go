// Overlay demonstrates map composition (§7 of the paper): finding every
// crossing between two independently indexed maps — here a county road
// network and a synthetic "utility line" map laid over it. Two PMR
// quadtrees are overlaid with a sequential merge of their linear
// representations; the same overlay through R*-trees requires an index
// nested-loop join, which probes the inner tree once per outer segment.
// The paper's point: the regular, data-independent decomposition of the
// PMR quadtree is what makes the cheap merge possible.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"segdb"
)

func main() {
	roads, err := segdb.GenerateCounty("Washington")
	if err != nil {
		log.Fatal(err)
	}
	roads.Segments = roads.Segments[:20000]
	utilities := utilityLines(4000)
	// Shuffle both relations: tables rarely stay in spatially coherent
	// order after real use, and the index nested-loop join's page traffic
	// depends entirely on that order, while the merge join's does not.
	shuffle := rand.New(rand.NewSource(99))
	shuffle.Shuffle(len(roads.Segments), func(i, j int) {
		roads.Segments[i], roads.Segments[j] = roads.Segments[j], roads.Segments[i]
	})
	shuffle.Shuffle(len(utilities.Segments), func(i, j int) {
		utilities.Segments[i], utilities.Segments[j] = utilities.Segments[j], utilities.Segments[i]
	})
	fmt.Printf("overlaying %d road segments with %d utility segments (shuffled storage order)\n\n",
		len(roads.Segments), len(utilities.Segments))

	for _, kind := range []segdb.Kind{segdb.PMRQuadtree, segdb.RStarTree} {
		a, err := segdb.Open(kind)
		if err != nil {
			log.Fatal(err)
		}
		b, err := segdb.Open(kind)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := a.Load(roads); err != nil {
			log.Fatal(err)
		}
		if _, err := b.Load(utilities); err != nil {
			log.Fatal(err)
		}
		a.DropCaches()
		b.DropCaches()
		before := a.Metrics().DiskAccesses + b.Metrics().DiskAccesses

		crossings := 0
		start := time.Now()
		err = a.Overlay(b, func(_, _ segdb.SegmentID, _, _ segdb.Segment) bool {
			crossings++
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		accesses := a.Metrics().DiskAccesses + b.Metrics().DiskAccesses - before
		fmt.Printf("%-14v %6d crossings, %7d disk accesses, %8v\n",
			kind, crossings, accesses, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\n(two PMR quadtrees merge sequentially regardless of storage order;")
	fmt.Println(" the R*-trees fall back to an index nested-loop join whose inner")
	fmt.Println(" probes follow the outer relation's order — ruinous once shuffled)")
}

// utilityLines fabricates a sparse web of long transmission corridors:
// jittered horizontal and vertical lines spanning the map, chopped into
// pole-to-pole segments. Corridors cross each other but never themselves.
func utilityLines(n int) *segdb.MapData {
	rng := rand.New(rand.NewSource(31))
	m := &segdb.MapData{Name: "utilities", Class: "synthetic"}
	const step = 400
	spans := segdb.WorldSize / step
	corridors := n / (2 * spans)
	for c := 0; c < corridors; c++ {
		// One horizontal and one vertical corridor per iteration.
		y := int32(rng.Intn(segdb.WorldSize))
		x := int32(rng.Intn(segdb.WorldSize))
		for i := 0; i < spans; i++ {
			x0 := int32(i * step)
			x1 := clampW(x0 + step)
			jy0 := clampW(y + int32(rng.Intn(61)) - 30)
			jy1 := clampW(y + int32(rng.Intn(61)) - 30)
			m.Segments = append(m.Segments, segdb.Segment{P1: segdb.Pt(x0, jy0), P2: segdb.Pt(x1, jy1)})

			y0 := int32(i * step)
			y1 := clampW(y0 + step)
			jx0 := clampW(x + int32(rng.Intn(61)) - 30)
			jx1 := clampW(x + int32(rng.Intn(61)) - 30)
			m.Segments = append(m.Segments, segdb.Segment{P1: segdb.Pt(jx0, y0), P2: segdb.Pt(jx1, y1)})
		}
	}
	return m
}

func clampW(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v >= segdb.WorldSize {
		return segdb.WorldSize - 1
	}
	return v
}
