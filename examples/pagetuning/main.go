// Pagetuning reproduces the experiment behind Figure 6 of the paper at
// interactive scale: how the page size and buffer pool size drive the
// number of potential disk accesses while bulk-loading an index. Larger
// pages hold more entries (fewer pages total) and larger pools keep more
// of the working set resident, so accesses fall along both axes — and the
// PMR quadtree's 8-byte entries beat the R+-tree's 20-byte tuples at every
// configuration.
package main

import (
	"fmt"
	"log"

	"segdb"
)

func main() {
	m, err := segdb.GenerateCounty("Cecil")
	if err != nil {
		log.Fatal(err)
	}
	// A slice of the county keeps the sweep quick; the full-size sweep is
	// `go run ./cmd/experiments figure6`.
	m.Segments = m.Segments[:12000]
	fmt.Printf("bulk-loading %d segments of %s at each configuration\n\n", len(m.Segments), m.Name)

	pages := []int{512, 1024, 2048, 4096}
	pools := []int{8, 16, 32, 64}
	for _, kind := range []segdb.Kind{segdb.RPlusTree, segdb.PMRQuadtree} {
		fmt.Printf("%v build disk accesses:\n", kind)
		fmt.Printf("%10s", "page\\pool")
		for _, pool := range pools {
			fmt.Printf("%10d", pool)
		}
		fmt.Println()
		for _, page := range pages {
			fmt.Printf("%10d", page)
			for _, pool := range pools {
				db, err := segdb.Open(kind, segdb.WithPageSize(page), segdb.WithPoolPages(pool))
				if err != nil {
					log.Fatal(err)
				}
				if _, err := db.Load(m); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%10d", db.Metrics().DiskAccesses)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
