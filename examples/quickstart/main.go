// Quickstart: open a line segment database, add a tiny road network, and
// run all five queries of Hoel & Samet (SIGMOD 1992) against it.
package main

import (
	"fmt"
	"log"
	"math"

	"segdb"
)

func main() {
	// Any of segdb.RStarTree, segdb.RPlusTree, segdb.PMRQuadtree,
	// segdb.KDBTree, segdb.UniformGrid; nil options = the paper's
	// defaults (1 KB pages, 16-page buffer pool).
	db, err := segdb.Open(segdb.PMRQuadtree)
	if err != nil {
		log.Fatal(err)
	}

	// A small city block with a cul-de-sac, on the 16384x16384 grid. Like
	// TIGER data the map is "noded": 1st Ave is split where Short Ct
	// meets it, so segments only touch at shared endpoints.
	roads := []segdb.Segment{
		segdb.Seg(1000, 1000, 2000, 1000), // Main St (south)
		segdb.Seg(2000, 1000, 2000, 1500), // 1st Ave (east, lower half)
		segdb.Seg(2000, 1500, 2000, 2000), // 1st Ave (east, upper half)
		segdb.Seg(2000, 2000, 1000, 2000), // Oak St (north)
		segdb.Seg(1000, 2000, 1000, 1000), // 2nd Ave (west)
		segdb.Seg(2000, 1500, 1600, 1500), // Short Ct (dead end)
	}
	ids := make([]segdb.SegmentID, len(roads))
	for i, r := range roads {
		if ids[i], err = db.Add(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d segments in a %v (%d bytes of index pages)\n\n",
		db.Len(), db.Kind(), db.IndexSizeBytes())

	// Query 1: which roads meet at the corner of Main St and 1st Ave?
	fmt.Println("query 1 — segments incident at (2000,1000):")
	db.IncidentAt(segdb.Pt(2000, 1000), func(id segdb.SegmentID, s segdb.Segment) bool {
		fmt.Printf("  #%d %v\n", id, s)
		return true
	})

	// Query 2: starting from Main St's west end, who meets its east end?
	fmt.Println("query 2 — segments at the other endpoint of Main St:")
	db.OtherEndpoint(ids[0], segdb.Pt(1000, 1000), func(id segdb.SegmentID, s segdb.Segment) bool {
		fmt.Printf("  #%d %v\n", id, s)
		return true
	})

	// Query 3: the nearest road to a house in the block.
	res, err := db.Nearest(segdb.Pt(1500, 1400))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 3 — nearest road to (1500,1400): #%d %v at distance %.1f\n",
		res.ID, res.Seg, math.Sqrt(res.DistSq))

	// Query 4: the polygon (city block) enclosing the house. The dead-end
	// Short Ct is walked on both sides, so it appears twice.
	poly, err := db.EnclosingPolygon(segdb.Pt(1500, 1400))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 4 — enclosing polygon has %d boundary edges: %v\n", poly.Size(), poly.IDs)

	// Query 5: everything in a window around the block's SE corner.
	fmt.Println("query 5 — window [1800,900]-[2100,1600]:")
	cost, err := db.Measure(func() error {
		return db.Window(segdb.RectOf(1800, 900, 2100, 1600), func(id segdb.SegmentID, s segdb.Segment) bool {
			fmt.Printf("  #%d %v\n", id, s)
			return true
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe window query cost %d disk accesses, %d segment comparisons, %d bucket computations\n",
		cost.DiskAccesses, cost.SegComps, cost.NodeComps)
}
