// Command faultinjection demonstrates the fault model and recovery
// layer: checksummed persistence, deterministic crash injection, and
// integrity checking — all through the public facade.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"

	"segdb"
)

// grid builds a small deterministic road grid.
func grid() []segdb.Segment {
	var segs []segdb.Segment
	for i := int32(0); i < 10; i++ {
		segs = append(segs,
			segdb.Seg(1000+i*500, 1000, 1000+i*500, 6000),
			segdb.Seg(1000, 1000+i*500, 6000, 1000+i*500))
	}
	return segs
}

func main() {
	// 1. Build fault-free, save, reload, and check integrity.
	db, err := segdb.Open(segdb.PMRQuadtree)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range grid() {
		if _, err := db.Add(s); err != nil {
			log.Fatal(err)
		}
	}
	var img bytes.Buffer
	if err := db.Save(&img); err != nil {
		log.Fatal(err)
	}
	db2, err := segdb.Load(bytes.NewReader(img.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	rep := db2.CheckIntegrity()
	fmt.Printf("clean reload:   %d segments, healthy=%v (%d index + %d table pages)\n",
		rep.Segments, rep.Healthy(), rep.IndexPages, rep.TablePages)

	// 2. Flip one bit in the saved image: Load reports the damaged page.
	bad := bytes.Clone(img.Bytes())
	bad[len(bad)-100] ^= 0x04
	_, err = segdb.Load(bytes.NewReader(bad))
	var ce *segdb.ChecksumError
	fmt.Printf("bit flip:       load err=%v (is ErrChecksum: %v, page %v)\n",
		err != nil, errors.Is(err, segdb.ErrChecksum), func() any {
			if errors.As(err, &ce) {
				return ce.Page
			}
			return "n/a"
		}())

	// 3. Crash mid-save: disk writes happen on eviction and flush (the
	// pool is write-back), so a small build crashes when Save flushes.
	// The disk halts at the Nth write; everything after fails with a
	// typed injected-fault error.
	db3, err := segdb.Open(segdb.RStarTree)
	if err != nil {
		log.Fatal(err)
	}
	db3.SetFaultPolicy(segdb.NewFaultPolicy(segdb.FaultConfig{
		Seed:             42,
		CrashAfterWrites: 2,
	}))
	for _, s := range grid() {
		if _, err := db3.Add(s); err != nil {
			log.Fatal(err)
		}
	}
	err = db3.Save(io.Discard)
	fmt.Printf("injected crash: save fails (is ErrInjectedFault: %v): %v\n",
		errors.Is(err, segdb.ErrInjectedFault), err)
}
