// Polygonmap demonstrates the enclosing-polygon query (query 4 of the
// paper) on contrasting county archetypes: city blocks in urban Baltimore
// are a handful of segments while rural Charles county polygons run into
// the hundreds (the paper measures averages of 19 vs 132). The polygon is
// found purely through the disk-resident index: one nearest-line query
// followed by repeated other-endpoint queries walking the face boundary.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"segdb"
)

func main() {
	for _, county := range []string{"Baltimore", "Charles"} {
		m, err := segdb.GenerateCounty(county)
		if err != nil {
			log.Fatal(err)
		}
		db, err := segdb.Open(segdb.PMRQuadtree)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := db.Load(m); err != nil {
			log.Fatal(err)
		}

		// Sample query points next to roads (so we land in real blocks,
		// not the empty margin outside the network).
		rng := rand.New(rand.NewSource(7))
		const trials = 40
		sizes := make([]int, 0, trials)
		var totalCost segdb.Metrics
		for len(sizes) < trials {
			s := m.Segments[rng.Intn(len(m.Segments))]
			p := segdb.Pt(s.P1.X+1, s.P1.Y+1)
			cost, err := db.Measure(func() error {
				poly, err := db.EnclosingPolygon(p)
				if err != nil {
					return err
				}
				sizes = append(sizes, poly.Size())
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			totalCost = totalCost.Add(cost)
		}

		min, max, sum := sizes[0], sizes[0], 0
		for _, sz := range sizes {
			if sz < min {
				min = sz
			}
			if sz > max {
				max = sz
			}
			sum += sz
		}
		fmt.Printf("%s (%s): polygons over %d trials: min %d, avg %.1f, max %d segments\n",
			m.Name, m.Class, trials, min, float64(sum)/float64(trials), max)
		fmt.Printf("  avg cost/polygon: %.1f disk accesses, %.1f segment comparisons\n\n",
			float64(totalCost.DiskAccesses)/trials, float64(totalCost.SegComps)/trials)
	}
	fmt.Println("urban blocks are small; rural polygons meander (streams and roads")
	fmt.Println("running in tandem), which is why the paper normalizes Figures 7-9")
	fmt.Println("per map before comparing the structures.")
}
