package segdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// buildCompressed applies the torture workload (adds and deletes, no
// checkpoints) to a fresh database of the given kind and compression
// level.
func buildCompressed(t *testing.T, kind Kind, level int, ops []crashOp) *DB {
	t.Helper()
	db, err := Open(kind, WithPageCompression(level))
	if err != nil {
		t.Fatalf("Open(%v, level %d): %v", kind, level, err)
	}
	for i, op := range ops {
		if op.ckpt {
			continue
		}
		if err := op.apply(db); err != nil {
			t.Fatalf("%v level %d: op %d: %v", kind, level, i, err)
		}
	}
	return db
}

// TestCompressionEquivalenceAllKinds is the acceptance test for the
// compressed page formats: for every index kind, a database built at
// compression levels 1 and 2 must answer every paper query identically
// to the classic level-0 build, pass its integrity check, and keep both
// properties across a Save/Load round trip.
func TestCompressionEquivalenceAllKinds(t *testing.T) {
	const nAdds = 220
	const seed = 41
	ops := crashOps(nAdds, seed)
	probe := crashSegments(nAdds, seed)
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			base := buildCompressed(t, kind, 0, ops)
			want := crashFingerprint(t, base, probe)
			for _, level := range []int{1, 2} {
				db := buildCompressed(t, kind, level, ops)
				if r := db.CheckIntegrity(); !r.Healthy() {
					t.Fatalf("level %d: integrity: %v", level, r.Err())
				}
				if got := crashFingerprint(t, db, probe); got != want {
					t.Fatalf("level %d queries diverge from level 0:\nlevel %d:\n%s\nlevel 0:\n%s", level, level, got, want)
				}
				var buf bytes.Buffer
				if err := db.Save(&buf); err != nil {
					t.Fatalf("level %d: Save: %v", level, err)
				}
				re, err := Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("level %d: Load: %v", level, err)
				}
				if re.opts.PageCompression != level {
					t.Fatalf("reloaded level = %d, want %d", re.opts.PageCompression, level)
				}
				if r := re.CheckIntegrity(); !r.Healthy() {
					t.Fatalf("level %d reloaded: integrity: %v", level, r.Err())
				}
				if got := crashFingerprint(t, re, probe); got != want {
					t.Fatalf("level %d reloaded queries diverge from level 0", level)
				}
			}
		})
	}
}

// TestCompressionShrinksIndex checks the format pays for itself: on a
// bulk-built index (leaves packed to capacity, the bench configuration)
// level 1 must fit at least 1.5x more leaf entries per leaf page than
// level 0 for every kind. Incrementally built trees gain less — split
// policies keep leaves part-full regardless of capacity — so the bound
// is asserted where occupancy reflects the format, not the workload.
func TestCompressionShrinksIndex(t *testing.T) {
	segs := crashSegments(4000, 43)
	build := func(kind Kind, level int) *DB {
		t.Helper()
		db, err := Open(kind, WithPageCompression(level), WithPoolPages(256))
		if err != nil {
			t.Fatalf("Open(%v, level %d): %v", kind, level, err)
		}
		if _, err := db.AddBatch(segs); err != nil {
			t.Fatalf("%v level %d: AddBatch: %v", kind, level, err)
		}
		return db
	}
	for _, kind := range allKinds() {
		base := build(kind, 0)
		comp := build(kind, 1)
		bs, err := base.PageFormatStats()
		if err != nil {
			t.Fatalf("%v: stats: %v", kind, err)
		}
		cs, err := comp.PageFormatStats()
		if err != nil {
			t.Fatalf("%v: stats: %v", kind, err)
		}
		if bs.Formats["v1"] == 0 || bs.Formats["v3"]+bs.Formats["v3-16"]+bs.Formats["v3-8"] != 0 {
			t.Fatalf("%v level 0 wrote compressed pages: %v", kind, bs.Formats)
		}
		if cs.Formats["v3"]+cs.Formats["v3-16"] == 0 {
			t.Fatalf("%v level 1 wrote no compressed pages: %v", kind, cs.Formats)
		}
		if cs.AvgLeafFanout() < 1.5*bs.AvgLeafFanout() {
			t.Errorf("%v: level-1 leaf fanout %.1f < 1.5x level-0 %.1f",
				kind, cs.AvgLeafFanout(), bs.AvgLeafFanout())
		}
	}
}

// TestCompressedImageCrashRecovery crashes a WAL-backed compressed
// database mid-workload, recovers from the surviving files, and
// requires the recovered database to keep its compression level, pass
// integrity, and answer queries exactly like a clean replay of the
// committed prefix (also built compressed).
func TestCompressedImageCrashRecovery(t *testing.T) {
	const nAdds = 48
	const seed = 59
	ops := crashOps(nAdds, seed)
	probe := crashSegments(nAdds, seed)
	for _, kind := range []Kind{RStarTree, RPlusTree, PMRQuadtree, UniformGrid} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			// Bound the sweep with a crash-free run.
			clean := NewMemWALFS()
			db, err := Open(kind, WithWALFS(clean), WithPageCompression(2))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			clean.SetCrashAfterWrites(0, seed)
			for _, op := range ops {
				if err := op.apply(db); err != nil {
					t.Fatalf("crash-free workload: %v", err)
				}
			}
			total := clean.Writes()
			for _, n := range []uint64{1, total / 3, total / 2, total - 1} {
				if n == 0 {
					continue
				}
				wfs := NewMemWALFS()
				db, err := Open(kind, WithWALFS(wfs), WithPageCompression(2))
				if err != nil {
					t.Fatalf("n=%d: Open: %v", n, err)
				}
				wfs.SetCrashAfterWrites(n, int64(n)*17+seed)
				var opErr error
				for _, op := range ops {
					if opErr = op.apply(db); opErr != nil {
						break
					}
				}
				if opErr != nil && !errors.Is(opErr, ErrWALCrash) {
					t.Fatalf("n=%d: non-crash error: %v", n, opErr)
				}
				wfs.Reboot()
				rec, rep, err := RecoverFS(wfs)
				if err != nil {
					t.Fatalf("n=%d: RecoverFS: %v", n, err)
				}
				if rec.opts.PageCompression != 2 {
					t.Fatalf("n=%d: recovered compression level %d, want 2", n, rec.opts.PageCompression)
				}
				if r := rec.CheckIntegrity(); !r.Healthy() {
					t.Fatalf("n=%d: recovered db unhealthy: %v", n, r.Err())
				}
				ref, err := Open(kind, WithPageCompression(2))
				if err != nil {
					t.Fatalf("n=%d: Open ref: %v", n, err)
				}
				var applied uint64
				for _, op := range ops {
					if op.ckpt {
						continue
					}
					if applied == rep.Seq {
						break
					}
					if err := op.apply(ref); err != nil {
						t.Fatalf("n=%d: clean replay: %v", n, err)
					}
					applied++
				}
				if got, want := crashFingerprint(t, rec, probe), crashFingerprint(t, ref, probe); got != want {
					t.Fatalf("n=%d: recovered queries diverge from clean compressed replay of %d mutations:\nrecovered:\n%s\nclean:\n%s",
						n, rep.Seq, got, want)
				}
			}
		})
	}
}

// TestLoadAcceptsV2Images synthesizes a format-002 file (7 header
// words, no compression field) from a fresh level-0 save and checks the
// loader still accepts it, defaulting compression to 0.
func TestLoadAcceptsV2Images(t *testing.T) {
	db, err := Open(PMRQuadtree)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range crashSegments(30, 7) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v3 := buf.Bytes()
	// v3 layout: magic(8) | 8 x uint32 header | meta x uint64 | crc32 |
	// table image | index image. The v2 layout drops header word 7 (the
	// compression level) and uses the 002 magic; its CRC covers exactly
	// the bytes written.
	metaWords := binary.LittleEndian.Uint32(v3[8+6*4:])
	headerEnd := 8 + 8*4
	metaEnd := headerEnd + int(metaWords)*8
	var v2 bytes.Buffer
	v2.WriteString("SEGDB002")
	v2.Write(v3[8 : 8+7*4])
	v2.Write(v3[headerEnd:metaEnd])
	binary.Write(&v2, binary.LittleEndian, crc32.ChecksumIEEE(v2.Bytes()))
	v2.Write(v3[metaEnd+4:])

	re, err := Load(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("loading synthesized v2 image: %v", err)
	}
	if re.opts.PageCompression != 0 {
		t.Fatalf("v2 image loaded with compression %d, want 0", re.opts.PageCompression)
	}
	if r := re.CheckIntegrity(); !r.Healthy() {
		t.Fatalf("v2 image unhealthy: %v", r.Err())
	}
	if re.Len() != db.Len() {
		t.Fatalf("v2 image has %d segments, want %d", re.Len(), db.Len())
	}
}
