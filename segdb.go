// Package segdb is a disk-oriented spatial database for large line segment
// collections ("polygonal maps"), reproducing the systems compared by
// Hoel & Samet in "A Qualitative Comparison Study of Data Structures for
// Large Line Segment Databases" (SIGMOD 1992).
//
// A DB pairs a disk-resident segment table with one of six spatial
// indexes — the R*-tree, the classic Guttman R-tree, the hybrid R+-tree of
// the paper, the PMR quadtree (a linear quadtree over a B+-tree), the pure
// k-d-B-tree variant, or a uniform grid — all implemented from scratch over a simulated paged disk
// with an LRU buffer pool, so every operation is accounted in the paper's
// three currencies: disk accesses, segment comparisons, and bounding
// box/bucket computations.
//
// The five queries of the paper are provided on every index: segments
// incident at an endpoint, segments at the other endpoint of a segment,
// nearest segment to a point, the minimal polygon (map face) enclosing a
// point, and rectangular window search.
//
//	db, _ := segdb.Open(segdb.PMRQuadtree)
//	id, _ := db.Add(segdb.Seg(10, 10, 400, 80))
//	res, _ := db.Nearest(segdb.Pt(50, 60))
//
// Each query also has a context-threaded form returning per-query
// statistics (see WindowCtx and the "Query API v2" section of the
// README):
//
//	st, _ := db.WindowCtx(ctx, r, visit)
//	fmt.Println(st.DiskAccesses(), st.SegComps)
package segdb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"segdb/internal/core"
	"segdb/internal/geom"
	"segdb/internal/grid"
	"segdb/internal/pmr"
	"segdb/internal/rplus"
	"segdb/internal/rstar"
	"segdb/internal/seg"
	"segdb/internal/staging"
	"segdb/internal/store"
)

// Geometry types of the 16384 x 16384 integer world.
type (
	// Point is a location on the grid.
	Point = geom.Point
	// Segment is an undirected line segment between two grid points.
	Segment = geom.Segment
	// Rect is a closed axis-aligned rectangle.
	Rect = geom.Rect
	// SegmentID identifies a stored segment.
	SegmentID = seg.ID
	// NearestResult is the answer to a nearest-segment query.
	NearestResult = core.NearestResult
	// Polygon is the boundary of a map face, as returned by
	// EnclosingPolygon.
	Polygon = core.Polygon
	// Metrics counts disk accesses, segment comparisons, and bounding
	// box/bucket computations.
	Metrics = core.Metrics
)

// Fault-injection types, re-exported so facade users can construct
// policies without reaching into internal packages. The error types and
// sentinels they produce live in errors.go alongside the rest of the
// typed-error surface.
type (
	// FaultPolicy injects deterministic faults into a DB's disks; see
	// SetFaultPolicy.
	FaultPolicy = store.FaultPolicy
	// FaultConfig configures the fault distribution of a FaultPolicy.
	FaultConfig = store.FaultConfig
)

// NewFaultPolicy creates a fault-injection policy; attach it with
// SetFaultPolicy.
func NewFaultPolicy(cfg FaultConfig) *FaultPolicy { return store.NewFaultPolicy(cfg) }

// WorldSize is the side length of the coordinate space.
const WorldSize = geom.WorldSize

// Pt builds a Point.
func Pt(x, y int32) Point { return geom.Pt(x, y) }

// Seg builds a Segment from endpoint coordinates.
func Seg(x1, y1, x2, y2 int32) Segment { return geom.Seg(x1, y1, x2, y2) }

// RectOf builds a Rect from two corners (in any order).
func RectOf(x1, y1, x2, y2 int32) Rect { return geom.RectOf(x1, y1, x2, y2) }

// World returns the rectangle covering the whole coordinate space.
func World() Rect { return geom.World() }

// Kind selects the spatial index backing a DB.
type Kind int

// The six index kinds.
const (
	// RStarTree is the R*-tree of Beckmann et al. (minimum bounding
	// rectangles, forced reinsertion; the most compact structure).
	RStarTree Kind = iota
	// RPlusTree is the paper's hybrid R+-tree: disjoint k-d-B style space
	// partition with segment MBRs in the leaves.
	RPlusTree
	// PMRQuadtree is the PMR quadtree stored as a linear quadtree in a
	// disk B+-tree (splitting threshold 4, max depth 14 by default).
	PMRQuadtree
	// KDBTree is the pure k-d-B-tree variant of the hybrid (no leaf
	// MBRs); an ablation of RPlusTree.
	KDBTree
	// UniformGrid is the fixed-resolution grid of the paper's §2.
	UniformGrid
	// ClassicRTree is the original R-tree of Guttman (least-enlargement
	// insertion, quadratic split, no forced reinsertion) — the baseline
	// the R*-tree improves on.
	ClassicRTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case RStarTree:
		return "R*-tree"
	case RPlusTree:
		return "R+-tree"
	case PMRQuadtree:
		return "PMR quadtree"
	case KDBTree:
		return "k-d-B-tree"
	case UniformGrid:
		return "uniform grid"
	case ClassicRTree:
		return "R-tree"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Options tunes the simulated disk and the index parameters. The zero
// value of any field selects the paper's default.
//
// Options is the internal carrier the functional With* options fold
// into; constructing one directly is the deprecated pre-v2
// configuration path. A *Options still satisfies Option for source
// compatibility with out-of-tree pre-v2 callers, but no code in this
// repository uses it — the serving tier and every command configure
// databases exclusively through functional options, enforced by the
// vet-style gate TestNoLegacyOptionsConstruction.
type Options struct {
	// PageSize is the disk page size in bytes (default 1024).
	PageSize int
	// PoolPages is the buffer pool capacity in pages (default 16).
	PoolPages int
	// PoolShards is the number of independently latched buffer pool
	// shards (default 1, the paper-exact LRU pool; negative sizes the
	// pool automatically from GOMAXPROCS — see WithPoolShards).
	PoolShards int
	// PMRThreshold is the PMR quadtree splitting threshold (default 4).
	PMRThreshold int
	// PMRStoreMBR enables the PMR variant of §6 of the paper that stores
	// a small bounding rectangle with every q-edge ("3-tuples"), trading
	// storage for fewer segment comparisons.
	PMRStoreMBR bool
	// GridCells is the uniform grid resolution per side (default 64).
	GridCells int32
	// PageCompression selects the on-disk page format level 0..2 (see
	// WithPageCompression). Serialized by SaveTo: a compressed image
	// reopens compressed.
	PageCompression int
	// BulkLoad makes Load build the index bottom-up through the bulk
	// pipeline instead of per-segment insertion (see WithBulkLoad and
	// AddBatch). A build-time switch: not serialized by SaveTo.
	BulkLoad bool
	// FaultPolicy, if non-nil, is attached to both disks at open time
	// (see WithFaultPolicy). Runtime state, not serialized by SaveTo.
	FaultPolicy *FaultPolicy
	// Tracer, if non-nil, is installed at open time (see WithTracer).
	// Runtime state, not serialized by SaveTo.
	Tracer Tracer
	// WALDir, if non-empty, makes the database durable: a write-ahead
	// log and checkpoint are kept in this directory (see WithWAL).
	WALDir string
	// WALFS, if non-nil, overrides WALDir with an explicit log
	// filesystem (see WithWALFS); crash harnesses pass a MemWALFS.
	WALFS WALFS
	// RetryPolicy, if non-nil, is attached to both disks at open time
	// (see WithRetryPolicy). Runtime state, not serialized by SaveTo.
	RetryPolicy *RetryPolicy
	// DegradedReads makes queries skip quarantined pages and report them
	// in QueryStats.SkippedPages instead of failing (see
	// WithDegradedReads).
	DegradedReads bool
	// StagedIngest enables MVCC snapshot reads and LSM-staged writes
	// (see WithStagedIngest). A runtime mode, not serialized by SaveTo.
	StagedIngest bool
	// CompactThreshold is the staging-tier size that triggers automatic
	// compaction (default 4096; negative disables — see
	// WithCompactThreshold).
	CompactThreshold int
}

// DB is a line segment database: a disk-resident segment table plus one
// spatial index over it.
//
// # Concurrency model
//
// The read path is fully concurrent: any number of goroutines may run
// Window, Nearest, NearestK, IncidentAt, OtherEndpoint, EnclosingPolygon,
// Get, and the batch executors (WindowBatch, OverlayParallel) at the same
// time. They share a reader lock; underneath, the buffer pools are
// latched and every metric counter is atomic, so concurrent queries
// neither race nor skew the paper's accounting (hits+misses, segment
// comparisons, and bounding box computations total exactly the same as a
// sequential replay; only the hit/miss split depends on interleaving).
//
// By default writes are exclusive: Add, Delete, Load, LoadPacked,
// DropCaches, CheckIntegrity, SetFaultPolicy, and SaveTo take the writer
// lock and therefore never run concurrently with queries or each other.
//
// A database opened with WithStagedIngest instead runs MVCC snapshot
// reads: queries pin an immutable published snapshot and acquire no lock
// at all, while Add and Delete are absorbed by an in-memory staging tier
// and folded into the disk index by compaction (see mvcc.go). Writers
// never block readers and readers never block writers; writers still
// serialize among themselves on the writer lock.
type DB struct {
	mu    sync.RWMutex // queries share (legacy mode); structural writes are exclusive
	seq   uint64       // allocation order; fixes the lock order for two-DB operations
	kind  Kind
	opts  Options
	table *seg.Table
	pool  *store.Pool
	index core.Index

	trc      atomic.Pointer[tracerBox]  // installed tracer; queries read lock-free
	degraded atomic.Bool                // live degraded-reads flag; queries read lock-free
	qid      atomic.Uint64              // query IDs for QueryInfo
	prof     [numQueryKinds]kindProfile // per-kind latency/disk histograms

	// Staged-ingest (MVCC) state; snap is non-nil exactly in staged
	// mode. The writer-side fields are guarded by the writer half of mu;
	// readers only ever touch the immutable snapshot behind snap.
	snap     atomic.Pointer[dbSnapshot]
	curEpoch *store.Epoch // current epoch (writer-side)
	version  uint64       // mutations published so far (writer-side)
	mem      *staging.Mem // current memtable (writer-side)
	baseIDs  []seg.ID     // sorted live ids of the base index (writer-side)
	tombs    []seg.ID     // sorted tombstoned base ids (copy-on-write)

	lockedReads atomic.Uint64 // reader-lock acquisitions by query paths
	stagedOps   atomic.Uint64 // mutations absorbed by the staging tier
	compactions atomic.Uint64 // staging-tier folds into the base index
	bulkMerges  atomic.Uint64 // non-empty AddBatch bulk merges

	// Durability state (nil/zero without WithWAL); guarded by mu.
	walfs    store.WALFS // filesystem holding the checkpoint and the log
	wal      *store.WAL  // open write-ahead log
	walEpoch uint64      // epoch stamped on commits (checkpoint epoch + 1)
	walSeq   uint64      // mutations committed so far
}

// tracerBox wraps a Tracer for atomic publication (an interface value
// cannot be stored atomically without a carrier).
type tracerBox struct{ t Tracer }

// setTracer atomically installs (or with nil removes) the tracer.
func (db *DB) setTracer(t Tracer) {
	if t == nil {
		db.trc.Store(nil)
		return
	}
	db.trc.Store(&tracerBox{t: t})
}

// tracerNow returns the currently installed tracer (nil if none).
func (db *DB) tracerNow() Tracer {
	if b := db.trc.Load(); b != nil {
		return b.t
	}
	return nil
}

// dbSeq hands every DB a unique sequence number so operations over two
// databases (Overlay) can always acquire their locks in a global order.
var dbSeq atomic.Uint64

// Open creates an empty database backed by the chosen index kind. With
// no options it uses the configuration of the paper's experiments;
// tune it with functional options (WithPageSize, WithPoolPages,
// WithTracer, ...). The pre-v2 forms Open(kind, nil) and
// Open(kind, &Options{...}) still compile and behave identically.
func Open(kind Kind, opts ...Option) (*DB, error) {
	o := resolveOptions(opts)
	if o.PageCompression < 0 || o.PageCompression > 2 {
		return nil, fmt.Errorf("segdb: invalid page compression level %d (want 0..2)", o.PageCompression)
	}
	table := seg.NewTableSharded(o.PageSize, o.PoolPages, o.PoolShards)
	pool := store.NewShardedPool(store.NewDisk(o.PageSize), o.PoolPages, o.PoolShards)
	var (
		ix  core.Index
		err error
	)
	switch kind {
	case RStarTree, ClassicRTree:
		ix, err = rstar.New(pool, table, o.rstarConfig(kind))
	case RPlusTree, KDBTree:
		ix, err = rplus.New(pool, table, o.rplusConfig(kind))
	case PMRQuadtree:
		ix, err = pmr.New(pool, table, o.pmrConfig())
	case UniformGrid:
		ix, err = grid.New(pool, table, o.gridConfig())
	default:
		err = fmt.Errorf("segdb: unknown index kind %v", kind)
	}
	if err != nil {
		return nil, err
	}
	if o.FaultPolicy != nil {
		pool.Disk().SetFaultPolicy(o.FaultPolicy)
		table.Disk().SetFaultPolicy(o.FaultPolicy)
	}
	if o.RetryPolicy != nil {
		pool.Disk().SetRetryPolicy(o.RetryPolicy)
		table.Disk().SetRetryPolicy(o.RetryPolicy)
	}
	db := &DB{seq: dbSeq.Add(1), kind: kind, opts: o, table: table, pool: pool, index: ix}
	db.setTracer(o.Tracer)
	db.degraded.Store(o.DegradedReads)
	wfs := o.WALFS
	if wfs == nil && o.WALDir != "" {
		wfs, err = store.NewDirWALFS(o.WALDir)
		if err != nil {
			return nil, err
		}
	}
	if wfs != nil {
		if err := db.initWAL(wfs); err != nil {
			return nil, err
		}
	}
	if o.StagedIngest {
		if err := db.initStaged(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Kind returns the index kind backing the database.
func (db *DB) Kind() Kind { return db.kind }

// Len returns the number of stored segments.
func (db *DB) Len() int {
	if s := db.snap.Load(); s != nil {
		// The snapshot's merged view nets out staged deletes (the
		// append-only table retains tombstoned slots); no lock needed.
		return s.merged.Len()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.index.Table().Len()
}

// Add stores a segment and indexes it, returning its ID. Coordinates must
// lie in [0, WorldSize). In staged-ingest mode the segment lands in the
// in-memory staging tier (visible to queries immediately) and reaches
// the disk index at the next compaction.
func (db *DB) Add(s Segment) (SegmentID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stagedMode() {
		return db.addStagedLocked(s)
	}
	id, err := db.addLocked(s)
	if err != nil {
		return id, err
	}
	return id, db.walCommit()
}

func (db *DB) addLocked(s Segment) (SegmentID, error) {
	if !geom.World().ContainsPoint(s.P1) || !geom.World().ContainsPoint(s.P2) {
		return seg.NilID, fmt.Errorf("%w: segment %v outside the %dx%d world", ErrInvalidArgument, s, WorldSize, WorldSize)
	}
	id, err := db.table.Append(s)
	if err != nil {
		return seg.NilID, err
	}
	if err := db.index.Insert(id); err != nil {
		return seg.NilID, err
	}
	return id, nil
}

// Get fetches a segment's endpoints (counting one segment comparison,
// like any access to the disk-resident segment table).
func (db *DB) Get(id SegmentID) (Segment, error) {
	if db.stagedMode() {
		// The table is append-only with an atomic record count and a
		// latched pool; reads need no database lock.
		return db.table.Get(id)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.table.Get(id)
}

// Delete removes a segment from the index. The table slot is retained
// (the table is append-only, as in the paper's testbed). In staged-
// ingest mode the delete is absorbed by the staging tier — a memtable
// mark for a staged segment, a snapshot tombstone for a base one — and
// applied to the disk index at the next compaction.
func (db *DB) Delete(id SegmentID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stagedMode() {
		return db.deleteStagedLocked(id)
	}
	if err := db.index.Delete(id); err != nil {
		return err
	}
	return db.walCommit()
}

// Window visits every segment intersecting r (query 5 of the paper).
// Queries may run from any number of goroutines; visit must not call
// back into writer methods of the same DB (Add, Delete, DropCaches, ...)
// or it will deadlock on the writer lock. It is a convenience wrapper
// over WindowCtx with a background context and the stats discarded.
func (db *DB) Window(r Rect, visit func(SegmentID, Segment) bool) error {
	_, err := db.WindowCtx(context.Background(), r, visit)
	return err
}

// Nearest returns the segment closest to p (query 3). Found is false only
// for an empty database. It is a convenience wrapper over NearestCtx
// with a background context and the stats discarded.
func (db *DB) Nearest(p Point) (NearestResult, error) {
	res, _, err := db.NearestCtx(context.Background(), p)
	return res, err
}

// NearestK returns up to k segments ordered by increasing distance from p
// (incremental distance ranking — "find the nearest three subway lines").
// It is a convenience wrapper over NearestKCtx with a background context
// and the stats discarded.
func (db *DB) NearestK(p Point, k int) ([]NearestResult, error) {
	res, _, err := db.NearestKCtx(context.Background(), p, k)
	return res, err
}

// IncidentAt visits the segments having an endpoint exactly at p
// (query 1). It is a convenience wrapper over IncidentAtCtx with a
// background context and the stats discarded.
func (db *DB) IncidentAt(p Point, visit func(SegmentID, Segment) bool) error {
	_, err := db.IncidentAtCtx(context.Background(), p, visit)
	return err
}

// OtherEndpoint visits the segments incident at the other endpoint of
// segment id, given one endpoint p (query 2). It is a convenience
// wrapper over OtherEndpointCtx with a background context and the stats
// discarded.
func (db *DB) OtherEndpoint(id SegmentID, p Point, visit func(SegmentID, Segment) bool) error {
	_, err := db.OtherEndpointCtx(context.Background(), id, p, visit)
	return err
}

// EnclosingPolygon returns the boundary of the map face containing p
// (query 4). The database must hold a noded planar map for the result to
// be meaningful. It is a convenience wrapper over EnclosingPolygonCtx
// with a background context and the stats discarded.
func (db *DB) EnclosingPolygon(p Point) (Polygon, error) {
	poly, _, err := db.EnclosingPolygonCtx(context.Background(), p)
	return poly, err
}

// Metrics returns the cumulative counter snapshot; subtract two snapshots
// to cost an operation. Beyond the paper's three counters it carries the
// buffer-pool hit statistics (PoolHits, PoolRequests, HitRatio), so cache
// effectiveness is visible. Counters are atomic: Metrics may be called at
// any time, including while queries are in flight. The staged-ingest
// counters (StagedOps, Compactions, BulkMerges) are facade-level and
// filled in here; note a compaction rebuilds the index on a fresh disk,
// so the index-side disk counters restart from zero (table counters
// persist), exactly as a bulk AddBatch always has.
func (db *DB) Metrics() Metrics {
	var m Metrics
	if s := db.snap.Load(); s != nil {
		m = core.Snapshot(s.merged)
	} else {
		m = core.Snapshot(db.index)
	}
	m.StagedOps = db.stagedOps.Load()
	m.Compactions = db.compactions.Load()
	m.BulkMerges = db.bulkMerges.Load()
	return m
}

// Measure runs f and returns the metric deltas it caused, by diffing
// the database-wide cumulative counters around f.
//
// Deprecated: the diff is exact only while f's operations are the sole
// activity on the database — concurrent queries from other goroutines
// are attributed to f. Use the *Ctx query forms instead, whose
// QueryStats are carried by the query itself and therefore exact under
// any concurrency.
func (db *DB) Measure(f func() error) (Metrics, error) {
	before := core.StatsSnapshot(db.index)
	err := f()
	return core.MetricsOf(core.StatsSnapshot(db.index).Sub(before)), err
}

// DecodeCacheStats reports the decode-once node cache's counters on the
// index buffer pool: hits are page requests served from a frame's cached
// decoded struct-of-arrays node (the binary decode was skipped), misses
// are requests that had to decode. The cache sits behind the disk-access
// accounting — it changes neither reads, writes, nor pool hits — so
// these counters are pure CPU-cost observability. Index kinds that do
// not use the SoA node layout (grid, the B-tree interiors of the PMR
// quadtree) report zeros.
func (db *DB) DecodeCacheStats() (hits, misses uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.pool.DecodeStats()
}

// IndexSizeBytes returns the storage footprint of the index pages
// (excluding the segment table).
func (db *DB) IndexSizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.index.SizeBytes()
}

// TableSizeBytes returns the storage footprint of the segment table.
func (db *DB) TableSizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.table.SizeBytes()
}

// DropCaches empties both buffer pools, simulating a cold restart.
// Dirty frames are flushed first; with an active fault policy the flush
// can fail, leaving the caches partially dropped.
//
// In legacy mode DropCaches takes the writer lock: it must not (and,
// enforced here, cannot) run concurrently with queries, whose pinned
// pages would make dropping panic. In staged-ingest mode queries hold no
// lock, so DropCaches instead drops every unpinned frame and leaves the
// frames pinned by in-flight snapshot readers (and their decoded-node
// caches) alone — those readers keep their pages; everything else goes
// cold.
func (db *DB) DropCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stagedMode() {
		if _, err := db.pool.DropUnpinned(); err != nil {
			return err
		}
		_, err := db.table.Pool().DropUnpinned()
		return err
	}
	if err := db.index.DropCache(); err != nil {
		return err
	}
	return db.table.DropCache()
}

// SetFaultPolicy attaches a fault-injection policy to both of the
// database's simulated disks (index and segment table), modelling a
// single failing device. Pass nil to detach. It takes the writer lock, so
// a policy never attaches mid-query.
func (db *DB) SetFaultPolicy(p *store.FaultPolicy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pool.Disk().SetFaultPolicy(p)
	db.table.Disk().SetFaultPolicy(p)
}

// Index exposes the underlying core.Index for advanced use (experiment
// harnesses); most callers should use the DB methods. In staged-ingest
// mode it returns the current snapshot's merged view, so direct index
// queries see exactly what DB queries see.
func (db *DB) Index() core.Index {
	if s := db.snap.Load(); s != nil {
		return s.merged
	}
	return db.index
}
