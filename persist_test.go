package segdb

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func populate(t *testing.T, db *DB, n int, seed int64) []Segment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	segs := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		x := int32(rng.Intn(WorldSize - 500))
		y := int32(rng.Intn(WorldSize - 500))
		s := Seg(x, y, x+int32(rng.Intn(500)), y+int32(rng.Intn(500)))
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		segs = append(segs, s)
	}
	return segs
}

func TestSaveLoadRoundTripAllKinds(t *testing.T) {
	for _, k := range allKinds() {
		db, err := Open(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		segs := populate(t, db, 700, int64(k)+50)

		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatalf("%v: save: %v", k, err)
		}
		restored, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: load: %v", k, err)
		}
		if restored.Kind() != k || restored.Len() != db.Len() {
			t.Fatalf("%v: kind=%v len=%d after load", k, restored.Kind(), restored.Len())
		}

		// Query equivalence on windows and nearest.
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 25; trial++ {
			r := RectOf(
				int32(rng.Intn(WorldSize)), int32(rng.Intn(WorldSize)),
				int32(rng.Intn(WorldSize)), int32(rng.Intn(WorldSize)))
			var a, b []SegmentID
			db.Window(r, func(id SegmentID, _ Segment) bool { a = append(a, id); return true })
			restored.Window(r, func(id SegmentID, _ Segment) bool { b = append(b, id); return true })
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if len(a) != len(b) {
				t.Fatalf("%v trial %d: window %d vs %d results", k, trial, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v trial %d: window result %d differs", k, trial, i)
				}
			}
			p := Pt(int32(rng.Intn(WorldSize)), int32(rng.Intn(WorldSize)))
			ra, _ := db.Nearest(p)
			rb, _ := restored.Nearest(p)
			if ra.DistSq != rb.DistSq {
				t.Fatalf("%v trial %d: nearest %v vs %v", k, trial, ra.DistSq, rb.DistSq)
			}
		}

		// The restored database remains fully writable.
		if _, err := restored.Add(Seg(1, 1, 77, 77)); err != nil {
			t.Fatalf("%v: add after load: %v", k, err)
		}
		res, err := restored.Nearest(Pt(2, 2))
		if err != nil || !res.Found || res.Seg != Seg(1, 1, 77, 77) {
			t.Fatalf("%v: post-load insert invisible: %+v %v", k, res, err)
		}
		if err := restored.Delete(0); err != nil {
			t.Fatalf("%v: delete after load: %v", k, err)
		}
		_ = segs
	}
}

func TestSaveLoadPreservesOptions(t *testing.T) {
	opts := &Options{PageSize: 2048, PoolPages: 8, PMRThreshold: 8, PMRStoreMBR: true}
	db, err := Open(PMRQuadtree, opts)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, db, 300, 7)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.opts != db.opts {
		t.Fatalf("options differ: %+v vs %+v", restored.opts, db.opts)
	}
	// The restored StoreMBR tree keeps answering correctly.
	res, err := restored.Nearest(Pt(8000, 8000))
	if err != nil || !res.Found {
		t.Fatalf("nearest: %+v %v", res, err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a database"))); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated file.
	db, _ := Open(RStarTree, nil)
	populate(t, db, 100, 3)
	var buf bytes.Buffer
	db.Save(&buf)
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestSaveIsDeterministicAfterFlush(t *testing.T) {
	db, _ := Open(RPlusTree, nil)
	populate(t, db, 200, 4)
	var b1, b2 bytes.Buffer
	if err := db.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("back-to-back saves differ")
	}
}
