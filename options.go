package segdb

import "segdb/internal/store"

// Option configures Open. Options compose left to right:
//
//	db, err := segdb.Open(segdb.PMRQuadtree,
//	    segdb.WithPageSize(2048),
//	    segdb.WithPoolPages(64),
//	    segdb.WithTracer(segdb.NewJSONLTracer(f)))
//
// The pre-v2 call forms still compile and behave identically, because
// *Options itself satisfies Option: Open(kind, nil) and
// Open(kind, &Options{...}) remain valid (deprecated) spellings.
type Option interface {
	apply(*Options)
}

type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// apply makes *Options an Option, keeping the old Open(kind, *Options)
// signature compiling: the whole struct is copied in, zero fields
// selecting defaults exactly as withDefaults once did.
//
// Deprecated: pass individual With* options instead of an Options
// struct.
func (o *Options) apply(dst *Options) {
	if o != nil {
		*dst = *o
	}
}

// WithPageSize sets the disk page size in bytes (default 1024, the
// paper's configuration).
func WithPageSize(n int) Option {
	return optionFunc(func(o *Options) { o.PageSize = n })
}

// WithPoolPages sets the buffer pool capacity in pages (default 16).
func WithPoolPages(n int) Option {
	return optionFunc(func(o *Options) { o.PoolPages = n })
}

// WithPoolShards sets how many independently latched shards each buffer
// pool is split into. The default (0 left unset resolves to 1) keeps the
// single-shard exact-LRU pool whose eviction order reproduces the
// paper's disk-access counts page for page. Explicit values are rounded
// up to a power of two and capped so no shard starves; a negative value
// sizes the pool automatically from GOMAXPROCS. Multi-shard pools use
// CLOCK second-chance eviction, which approximates LRU — total page
// requests are identical, but the hit/miss split can differ from the
// single-shard numbers.
func WithPoolShards(n int) Option {
	return optionFunc(func(o *Options) { o.PoolShards = n })
}

// WithPMRThreshold sets the PMR quadtree splitting threshold
// (default 4).
func WithPMRThreshold(n int) Option {
	return optionFunc(func(o *Options) { o.PMRThreshold = n })
}

// WithPMRStoreMBR enables the PMR "3-tuple" variant that stores a small
// bounding rectangle with every q-edge.
func WithPMRStoreMBR(enabled bool) Option {
	return optionFunc(func(o *Options) { o.PMRStoreMBR = enabled })
}

// WithPageCompression selects the on-disk page format (default 0):
//
//	0  classic fixed-width pages, byte-identical to earlier versions;
//	1  lossless compressed pages: B+-tree leaves (PMR quadtree, uniform
//	   grid) delta-code their sorted keys as varints and bit-pack
//	   payloads to the 14-bit world domain, R-tree-family nodes store
//	   child rectangles as 16-bit offsets from the node MBR;
//	2  as 1, but R-tree-family rectangles quantize to 8-bit lanes with
//	   outward rounding — decoded rectangles conservatively contain the
//	   originals, so query results are unchanged while fanout roughly
//	   doubles again. The R+-tree and k-d-B-tree stay at the lossless
//	   encoding (their regions must tile exactly), as do B+-tree leaves
//	   (keys must round-trip).
//
// Pages are self-describing, so images written at different levels can
// be read back regardless of the database's current setting; the level
// only governs what new writes produce.
func WithPageCompression(level int) Option {
	return optionFunc(func(o *Options) { o.PageCompression = level })
}

// WithGridCells sets the uniform grid resolution per side (default 64).
func WithGridCells(n int32) Option {
	return optionFunc(func(o *Options) { o.GridCells = n })
}

// WithBulkLoad makes Load build the index bottom-up through the bulk
// pipeline instead of per-segment insertion (see AddBatch). A build-time
// switch only: it is not serialized by SaveTo, and it leaves Add,
// Delete, and every query exactly as they are. Keep it off to reproduce
// the paper's build costs (Table 1 measures one-at-a-time insertion).
func WithBulkLoad() Option {
	return optionFunc(func(o *Options) { o.BulkLoad = true })
}

// WithFaultPolicy attaches a fault-injection policy to both of the
// database's simulated disks at open time (equivalent to calling
// SetFaultPolicy immediately after Open).
func WithFaultPolicy(p *FaultPolicy) Option {
	return optionFunc(func(o *Options) { o.FaultPolicy = p })
}

// WithTracer installs a query tracer at open time (equivalent to
// calling SetTracer immediately after Open).
func WithTracer(t Tracer) Option {
	return optionFunc(func(o *Options) { o.Tracer = t })
}

// WithWAL makes the database durable: every mutation is written ahead
// to a CRC-framed log in dir (created if needed) and synced before the
// mutation returns, and checkpoints are replaced atomically. After a
// crash, Recover(dir) replays the log onto the last checkpoint. Open
// refuses a directory that already holds a checkpoint — reopen that
// state with Recover instead.
func WithWAL(dir string) Option {
	return optionFunc(func(o *Options) { o.WALDir = dir })
}

// WithWALFS is WithWAL over an explicit log filesystem instead of a
// directory path. Crash-recovery harnesses pass a MemWALFS, whose
// deterministic torn-write injection simulates power loss at any chosen
// write.
func WithWALFS(fs WALFS) Option {
	return optionFunc(func(o *Options) { o.WALFS = fs })
}

// WithRetryPolicy attaches a retry policy to both of the database's
// disks at open time (equivalent to calling SetRetryPolicy immediately
// after Open): transient injected read/write faults are retried with
// exponential backoff, and retries are counted in Metrics.Retries and
// QueryStats.Retries.
func WithRetryPolicy(rp *RetryPolicy) Option {
	return optionFunc(func(o *Options) { o.RetryPolicy = rp })
}

// WithStagedIngest opens the database in staged-ingest (MVCC) mode:
// queries pin an immutable published snapshot and run with no locking
// at all, while Add and Delete are absorbed by an in-memory staging
// tier — a memtable over a coarse grid — visible to queries
// immediately. Compaction (automatic past the threshold, or explicit
// via DB.Compact) folds the staging tier into a freshly bulk-built
// disk index and publishes it under a new epoch; readers pinned to the
// old epoch finish against the old index undisturbed. Writers never
// block readers and readers never block writers. A runtime mode: not
// serialized by SaveTo.
func WithStagedIngest() Option {
	return optionFunc(func(o *Options) { o.StagedIngest = true })
}

// WithCompactThreshold sets how large the staging tier (memtable
// entries plus base tombstones) may grow before a write triggers
// compaction (default 4096; negative disables automatic compaction,
// leaving it to explicit DB.Compact calls). Only meaningful with
// WithStagedIngest.
func WithCompactThreshold(n int) Option {
	return optionFunc(func(o *Options) { o.CompactThreshold = n })
}

// WithDegradedReads opens the database in degraded-read mode: a page
// that fails its checksum or exhausts its retries is quarantined and
// skipped instead of aborting the query, which then returns partial
// results with the skips counted in QueryStats.SkippedPages. Scrub
// repairs quarantined pages from the last checkpoint plus the
// write-ahead log. Mutations are never degraded: a write that cannot
// read its pages still fails loudly.
func WithDegradedReads(on bool) Option {
	return optionFunc(func(o *Options) { o.DegradedReads = on })
}

// resolveOptions folds the options over a zero Options and fills in the
// paper's defaults for fields left at zero.
func resolveOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt.apply(&o)
		}
	}
	if o.PageSize == 0 {
		o.PageSize = store.DefaultPageSize
	}
	if o.PoolPages == 0 {
		o.PoolPages = store.DefaultPoolPages
	}
	if o.PoolShards == 0 {
		o.PoolShards = 1
	}
	if o.PMRThreshold == 0 {
		o.PMRThreshold = 4
	}
	if o.GridCells == 0 {
		o.GridCells = 64
	}
	if o.CompactThreshold == 0 {
		o.CompactThreshold = 4096
	}
	return o
}
