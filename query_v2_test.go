package segdb

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQueryStatsSequential checks that on an otherwise idle database a
// single query's QueryStats equals the global counter delta on every
// field — including the interleaving-dependent disk reads, since there
// is no interleaving.
func TestQueryStatsSequential(t *testing.T) {
	m := stressMap(t)
	for _, k := range allKinds() {
		db, err := Open(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Load(m); err != nil {
			t.Fatal(err)
		}
		if err := db.DropCaches(); err != nil {
			t.Fatal(err)
		}
		before := db.Metrics()
		st, err := db.WindowCtx(context.Background(), RectOf(1000, 1000, 9000, 9000), func(SegmentID, Segment) bool { return true })
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		delta := db.Metrics().Sub(before)
		if st.SegComps != delta.SegComps {
			t.Errorf("%v: SegComps %d != delta %d", k, st.SegComps, delta.SegComps)
		}
		if st.NodeComps != delta.NodeComps {
			t.Errorf("%v: NodeComps %d != delta %d", k, st.NodeComps, delta.NodeComps)
		}
		if st.PoolRequests != delta.PoolRequests {
			t.Errorf("%v: PoolRequests %d != delta %d", k, st.PoolRequests, delta.PoolRequests)
		}
		if st.PoolHits != delta.PoolHits {
			t.Errorf("%v: PoolHits %d != delta %d", k, st.PoolHits, delta.PoolHits)
		}
		if st.DiskAccesses() != delta.DiskAccesses {
			t.Errorf("%v: DiskAccesses %d != delta %d", k, st.DiskAccesses(), delta.DiskAccesses)
		}
		if st.PoolRequests != st.PoolHits+st.DiskReads {
			t.Errorf("%v: PoolRequests %d != hits %d + reads %d", k, st.PoolRequests, st.PoolHits, st.DiskReads)
		}
		if st.DiskReads == 0 {
			t.Errorf("%v: cold-cache window reported zero disk reads", k)
		}
		if st.Wall <= 0 {
			t.Errorf("%v: non-positive wall time %v", k, st.Wall)
		}
	}
}

// TestWindowCtxCancellation checks the acceptance criterion on a
// ~50k-segment county: a canceled context aborts the query before its
// next page fetch and surfaces the context's error.
func TestWindowCtxCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("county generation skipped in -short mode")
	}
	county, err := GenerateCounty("Charles")
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(RStarTree, WithPoolPages(256))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadPacked(county); err != nil {
		t.Fatal(err)
	}

	// A context canceled before the query starts: not a single page may
	// be fetched, so on a cold cache the stats must show zero reads.
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visits := 0
	st, err := db.WindowCtx(ctx, World(), func(SegmentID, Segment) bool {
		visits++
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled query returned %v, want context.Canceled", err)
	}
	if visits != 0 {
		t.Fatalf("pre-canceled query visited %d segments", visits)
	}
	if st.DiskReads != 0 || st.PoolHits != 0 {
		t.Fatalf("pre-canceled query fetched pages: %+v", st)
	}

	// Cancel mid-query from the visitor: the query must stop at its next
	// page fetch — no further segments are delivered, and the error is
	// the context's.
	total := 0
	if err := db.Window(World(), func(SegmentID, Segment) bool { total++; return true }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	after := 0
	canceled := false
	st, err = db.WindowCtx(ctx, World(), func(SegmentID, Segment) bool {
		if canceled {
			after++
			return true
		}
		canceled = true
		cancel()
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-query cancel returned %v, want context.Canceled", err)
	}
	if after != 0 {
		t.Fatalf("query delivered %d segments after cancellation (of %d total)", after, total)
	}

	// An expired deadline surfaces as DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := db.WindowCtx(dctx, World(), func(SegmentID, Segment) bool { return true }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}

// TestCtxQueryEquivalence checks every *Ctx method returns the same
// answers as its context-free wrapper (which delegates to it) and a
// non-trivial QueryStats.
func TestCtxQueryEquivalence(t *testing.T) {
	m := stressMap(t)
	db, err := Open(PMRQuadtree)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.Load(m)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, st, err := db.NearestCtx(ctx, Pt(5000, 5000))
	if err != nil || !res.Found {
		t.Fatalf("NearestCtx: %v found=%v", err, res.Found)
	}
	if st.PoolRequests == 0 {
		t.Fatal("NearestCtx reported no page requests")
	}
	legacy, err := db.Nearest(Pt(5000, 5000))
	if err != nil || legacy.ID != res.ID {
		t.Fatalf("Nearest disagrees with NearestCtx: %v vs %v (%v)", legacy.ID, res.ID, err)
	}

	resK, st, err := db.NearestKCtx(ctx, Pt(5000, 5000), 3)
	if err != nil || len(resK) != 3 {
		t.Fatalf("NearestKCtx: %v len=%d", err, len(resK))
	}
	if st.NodeComps == 0 {
		t.Fatal("NearestKCtx reported no bucket computations")
	}

	s0, err := db.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	nIncident := 0
	if _, err := db.IncidentAtCtx(ctx, s0.P1, func(SegmentID, Segment) bool { nIncident++; return true }); err != nil {
		t.Fatal(err)
	}
	if nIncident == 0 {
		t.Fatal("IncidentAtCtx found nothing at a known endpoint")
	}
	nOther := 0
	if _, err := db.OtherEndpointCtx(ctx, ids[0], s0.P1, func(SegmentID, Segment) bool { nOther++; return true }); err != nil {
		t.Fatal(err)
	}

	poly, st, err := db.EnclosingPolygonCtx(ctx, Pt(8000, 8000))
	if err != nil {
		t.Fatal(err)
	}
	legacyPoly, err := db.EnclosingPolygon(Pt(8000, 8000))
	if err != nil || legacyPoly.Size() != poly.Size() {
		t.Fatalf("EnclosingPolygon disagrees with Ctx form: %d vs %d (%v)", legacyPoly.Size(), poly.Size(), err)
	}
	if st.SegComps == 0 {
		t.Fatal("EnclosingPolygonCtx reported no segment comparisons")
	}
}

// TestWindowBatchCtxStats checks the batch executor's per-rectangle
// stats sum to the global delta for the interleaving-independent totals
// and that context cancellation aborts the batch with the context's
// error.
func TestWindowBatchCtxStats(t *testing.T) {
	m := stressMap(t)
	db, err := Open(RStarTree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadPacked(m); err != nil {
		t.Fatal(err)
	}
	ops := stressOps(30, 99)
	var rects []Rect
	for _, op := range ops {
		if op.kind == 0 {
			rects = append(rects, op.rect)
		}
	}

	before := db.Metrics()
	stats, err := db.WindowBatchCtx(context.Background(), rects, 4, func(int, SegmentID, Segment) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(rects) {
		t.Fatalf("got %d stats for %d rects", len(stats), len(rects))
	}
	delta := db.Metrics().Sub(before)
	var sum QueryStats
	for _, st := range stats {
		sum = sum.Add(st)
	}
	if sum.SegComps != delta.SegComps || sum.NodeComps != delta.NodeComps || sum.PoolRequests != delta.PoolRequests {
		t.Fatalf("batch stats sum %+v does not reconcile with global delta %+v", sum, delta)
	}

	// Context cancellation is an error (unlike a visitor stop).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.WindowBatchCtx(ctx, rects, 4, func(int, SegmentID, Segment) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch returned %v, want context.Canceled", err)
	}
}

// TestOverlayCtx checks the v2 overlay returns the sequential pair set,
// a stats total covering the join, a nil error on visitor stop, and the
// context's error on cancellation.
func TestOverlayCtx(t *testing.T) {
	m := stressMap(t)
	m2 := stressMap(t)
	half := len(m2.Segments) / 2
	m2 = &MapData{Name: "stress-b", Class: "rural", Segments: m2.Segments[half:]}

	a, err := Open(RStarTree)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(UniformGrid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load(m); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(m2); err != nil {
		t.Fatal(err)
	}

	want := 0
	if err := a.Overlay(b, func(SegmentID, SegmentID, Segment, Segment) bool { want++; return true }); err != nil {
		t.Fatal(err)
	}
	if want == 0 {
		t.Fatal("overlay found no pairs; bad fixture")
	}

	for _, par := range []int{1, 4} {
		var got atomic.Int64
		st, err := a.OverlayCtx(context.Background(), b, par, func(SegmentID, SegmentID, Segment, Segment) bool {
			got.Add(1)
			return true
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if int(got.Load()) != want {
			t.Fatalf("parallelism %d: %d pairs, want %d", par, got.Load(), want)
		}
		if st.SegComps == 0 || st.PoolRequests == 0 {
			t.Fatalf("parallelism %d: empty overlay stats %+v", par, st)
		}
	}

	// Visitor stop is a clean nil; context cancellation is an error.
	var mu sync.Mutex
	calls := 0
	if _, err := a.OverlayCtx(context.Background(), b, 4, func(SegmentID, SegmentID, Segment, Segment) bool {
		mu.Lock()
		calls++
		mu.Unlock()
		return false
	}); err != nil {
		t.Fatalf("visitor-stopped overlay: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.OverlayCtx(ctx, b, 4, func(SegmentID, SegmentID, Segment, Segment) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled overlay returned %v, want context.Canceled", err)
	}
}

// TestErrCanceled pins the public error's identity and that it never
// escapes the batch/overlay APIs on a visitor stop.
func TestErrCanceled(t *testing.T) {
	if !errors.Is(ErrCanceled, CanceledError{}) {
		t.Fatal("ErrCanceled does not match CanceledError")
	}
	if ErrCanceled.Error() == "" {
		t.Fatal("empty error string")
	}
	var ce CanceledError
	if !errors.As(ErrCanceled, &ce) {
		t.Fatal("errors.As failed on ErrCanceled")
	}
}

// TestTracerJSONL runs traced queries and checks the JSONL stream has
// well-formed start/finish/fault events with matching query IDs.
func TestTracerJSONL(t *testing.T) {
	m := stressMap(t)
	var buf bytes.Buffer
	tr := NewJSONLTracer(&buf)
	db, err := Open(RStarTree, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(m); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.WindowCtx(context.Background(), RectOf(0, 0, 4000, 4000), func(SegmentID, Segment) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.NearestCtx(context.Background(), Pt(100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	type event struct {
		Event string      `json:"event"`
		Query uint64      `json:"query"`
		Kind  string      `json:"kind"`
		Time  string      `json:"time"`
		Page  *uint32     `json:"page"`
		Stats *QueryStats `json:"stats"`
		Error string      `json:"error"`
	}
	counts := map[string]int{}
	kinds := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		counts[e.Event]++
		kinds[e.Kind] = true
		if e.Time == "" || e.Query == 0 {
			t.Fatalf("event missing time/query: %q", sc.Text())
		}
		switch e.Event {
		case "page_fault":
			if e.Page == nil {
				t.Fatalf("page_fault without page: %q", sc.Text())
			}
		case "query_finish":
			if e.Stats == nil || e.Stats.PoolRequests == 0 {
				t.Fatalf("query_finish without stats: %q", sc.Text())
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["query_start"] != 2 || counts["query_finish"] != 2 {
		t.Fatalf("want 2 start/finish events, got %v", counts)
	}
	if counts["page_fault"] == 0 || counts["node_visit"] == 0 {
		t.Fatalf("want page_fault and node_visit events on a cold cache, got %v", counts)
	}
	if !kinds["window"] || !kinds["nearest"] {
		t.Fatalf("want window and nearest kinds, got %v", kinds)
	}

	// SetTracer(nil) silences the stream.
	db.SetTracer(nil)
	mark := buf.Len()
	if err := db.Window(RectOf(0, 0, 100, 100), func(SegmentID, Segment) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != mark {
		t.Fatal("tracer removed but events still written")
	}
}

// TestProfile checks DB.Profile aggregates every query — v2 and legacy
// — per kind with plausible histograms.
func TestProfile(t *testing.T) {
	m := stressMap(t)
	db, err := Open(UniformGrid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(m); err != nil {
		t.Fatal(err)
	}
	if p := db.Profile(); len(p.Queries) != 0 {
		t.Fatalf("profile not empty before any query: %+v", p)
	}
	for i := 0; i < 5; i++ {
		if err := db.Window(RectOf(0, 0, 6000, 6000), func(SegmentID, Segment) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.NearestKCtx(context.Background(), Pt(200, 300), 2); err != nil {
		t.Fatal(err)
	}
	p := db.Profile()
	byKind := map[string]QueryKindProfile{}
	for _, q := range p.Queries {
		byKind[q.Kind] = q
	}
	w, ok := byKind["window"]
	if !ok || w.Count != 5 {
		t.Fatalf("window profile wrong: %+v", p)
	}
	if w.LatencyMicros.Count != 5 || w.DiskAccesses.Count != 5 {
		t.Fatalf("window histograms not recorded: %+v", w)
	}
	if w.Errors != 0 {
		t.Fatalf("unexpected window errors: %+v", w)
	}
	if _, ok := byKind["nearestk"]; !ok {
		t.Fatalf("nearestk missing from profile: %+v", p)
	}
	if q := w.LatencyMicros.Quantile(0.5); q == 0 && w.LatencyMicros.Mean() > 1 {
		t.Fatalf("median latency 0 with mean %v", w.LatencyMicros.Mean())
	}

	// Errors are counted: a canceled query folds into the kind's profile.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.WindowCtx(ctx, World(), func(SegmentID, Segment) bool { return true }); err == nil {
		t.Fatal("expected cancellation error")
	}
	for _, q := range db.Profile().Queries {
		if q.Kind == "window" && q.Errors != 1 {
			t.Fatalf("canceled window not counted as error: %+v", q)
		}
	}
}

// TestFunctionalOptions checks the new Open signature, the legacy
// *Options spellings, and option composition.
func TestFunctionalOptions(t *testing.T) {
	// Defaults.
	o := resolveOptions(nil)
	if o.PageSize != 1024 || o.PoolPages != 16 || o.PMRThreshold != 4 || o.GridCells != 64 {
		t.Fatalf("bad defaults: %+v", o)
	}
	// Functional options compose left to right.
	o = resolveOptions([]Option{WithPageSize(2048), WithPoolPages(32), WithPageSize(512)})
	if o.PageSize != 512 || o.PoolPages != 32 {
		t.Fatalf("composition wrong: %+v", o)
	}
	// A legacy *Options replaces everything applied before it, then later
	// functional options refine it.
	o = resolveOptions([]Option{&Options{PageSize: 4096}, WithGridCells(8)})
	if o.PageSize != 4096 || o.GridCells != 8 || o.PoolPages != 16 {
		t.Fatalf("legacy+functional mix wrong: %+v", o)
	}
	// Nil legacy options are ignored.
	o = resolveOptions([]Option{(*Options)(nil)})
	if o.PageSize != 1024 {
		t.Fatalf("nil *Options not ignored: %+v", o)
	}

	// All three call forms open working databases.
	for _, open := range []func() (*DB, error){
		func() (*DB, error) { return Open(UniformGrid) },
		func() (*DB, error) { return Open(UniformGrid, nil) },
		func() (*DB, error) { return Open(UniformGrid, &Options{GridCells: 16}) },
		func() (*DB, error) { return Open(UniformGrid, WithGridCells(16), WithPoolPages(8)) },
	} {
		db, err := open()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Add(Seg(1, 1, 50, 50)); err != nil {
			t.Fatal(err)
		}
		n := 0
		if err := db.Window(World(), func(SegmentID, Segment) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("window found %d segments, want 1", n)
		}
	}

	// WithFaultPolicy attaches at open: a policy failing every read makes
	// the first cold page fetch fail with an injected fault.
	pol := NewFaultPolicy(FaultConfig{ReadErrorProb: 1})
	db, err := Open(RStarTree, WithFaultPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	opErr := func() error {
		if _, err := db.Add(Seg(1, 1, 50, 50)); err != nil {
			return err
		}
		if err := db.DropCaches(); err != nil {
			return err
		}
		return db.Window(World(), func(SegmentID, Segment) bool { return true })
	}()
	if opErr == nil {
		t.Fatal("fault policy attached via option injected no faults")
	}
	if !errors.Is(opErr, ErrInjectedFault) {
		t.Fatalf("got %v, want an injected fault", opErr)
	}
}

// TestMeasureStillWorks pins the deprecated Measure to its documented
// single-caller semantics.
func TestMeasureStillWorks(t *testing.T) {
	m := stressMap(t)
	db, err := Open(RStarTree)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(m); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	mt, err := db.Measure(func() error {
		return db.Window(RectOf(0, 0, 8000, 8000), func(SegmentID, Segment) bool { return true })
	})
	if err != nil {
		t.Fatal(err)
	}
	if mt.DiskAccesses == 0 || mt.SegComps == 0 || mt.NodeComps == 0 {
		t.Fatalf("Measure returned empty metrics: %+v", mt)
	}
	if mt.PoolRequests < mt.PoolHits {
		t.Fatalf("requests %d < hits %d", mt.PoolRequests, mt.PoolHits)
	}
}
