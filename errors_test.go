package segdb

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"segdb/internal/store"
)

// TestErrorCodeTable pins the error → wire-code mapping. The codes are
// part of the HTTP protocol (clients switch on them), so a change here
// is a breaking wire change: extend the table for new errors, never
// remap an existing one.
func TestErrorCodeTable(t *testing.T) {
	table := []struct {
		name string
		err  error
		code ErrCode
		http int
	}{
		{"nil", nil, CodeOK, 200},
		{"context.Canceled", context.Canceled, CodeCanceled, 499},
		{"ErrCanceled", ErrCanceled, CodeCanceled, 499},
		{"context.DeadlineExceeded", context.DeadlineExceeded, CodeDeadline, 504},
		{"ErrInvalidArgument", ErrInvalidArgument, CodeInvalid, 400},
		{"ErrPageUnavailable", ErrPageUnavailable, CodeUnavailable, 503},
		{"ErrAllPinned", ErrAllPinned, CodePoolExhausted, 503},
		{"ErrChecksum", ErrChecksum, CodeChecksum, 500},
		{"ErrInjectedFault", ErrInjectedFault, CodeIOFault, 500},
		{"ErrBadPage", ErrBadPage, CodeBadPage, 500},
		{"ErrNoWAL", ErrNoWAL, CodeNoWAL, 500},
		{"ErrWALCrash", ErrWALCrash, CodeWALCrash, 500},
		{"unknown", errors.New("boom"), CodeInternal, 500},
		// Wrapped forms classify like their sentinels.
		{"wrapped ChecksumError", &ChecksumError{Page: 3}, CodeChecksum, 500},
		{"fmt-wrapped invalid", fmt.Errorf("add: %w", ErrInvalidArgument), CodeInvalid, 400},
		{"deep-wrapped deadline", fmt.Errorf("query: %w", fmt.Errorf("fetch: %w", context.DeadlineExceeded)), CodeDeadline, 504},
		// A quarantined page whose root cause is corruption classifies by
		// the caller-visible condition (unavailable), not the cause.
		{"unavailable over checksum", &PageUnavailableError{Page: 7, Err: &store.ChecksumError{Page: 7}}, CodeUnavailable, 503},
	}
	for _, tc := range table {
		if got := ErrorCode(tc.err); got != tc.code {
			t.Errorf("ErrorCode(%s) = %q, want %q", tc.name, got, tc.code)
		}
		if got := ErrorCode(tc.err).HTTPStatus(); got != tc.http {
			t.Errorf("ErrorCode(%s).HTTPStatus() = %d, want %d", tc.name, got, tc.http)
		}
	}
}

// TestErrorCodeStrings pins the wire spelling of every code: these
// strings travel in JSON error responses and must never change.
func TestErrorCodeStrings(t *testing.T) {
	want := map[ErrCode]string{
		CodeOK:            "ok",
		CodeCanceled:      "canceled",
		CodeDeadline:      "deadline_exceeded",
		CodeInvalid:       "invalid_argument",
		CodeUnavailable:   "unavailable",
		CodeChecksum:      "checksum",
		CodeIOFault:       "io_fault",
		CodePoolExhausted: "pool_exhausted",
		CodeBadPage:       "bad_page",
		CodeNoWAL:         "no_wal",
		CodeWALCrash:      "wal_crash",
		CodeInternal:      "internal",
	}
	for code, s := range want {
		if string(code) != s {
			t.Errorf("code %q drifted from pinned spelling %q", code, s)
		}
	}
}
