// Typed errors of the public API, consolidated in one place, plus the
// stable wire classification the serving tier maps onto HTTP status
// codes.
//
// Every sentinel and error type the facade can surface — from the
// storage layer, the durability layer, or the query engine — is
// declared (or re-exported) here and classified by ErrorCode. The code
// table is frozen by TestErrorCodeTable: codes are part of the wire
// protocol (api clients switch on them), so an existing error may never
// change its code, and a new error must extend the table and the test
// together.
package segdb

import (
	"context"
	"errors"

	"segdb/internal/store"
)

// Error types re-exported from internal/store so facade users can
// construct policies and match typed errors without reaching into
// internal packages.
type (
	// ChecksumError reports a page whose contents no longer match its
	// recorded CRC32; it matches ErrChecksum via errors.Is.
	ChecksumError = store.ChecksumError
	// FaultError reports an injected read/write/crash fault; it matches
	// ErrInjectedFault via errors.Is.
	FaultError = store.FaultError
	// PageUnavailableError reports a page skipped in degraded-read mode;
	// it matches ErrPageUnavailable via errors.Is.
	PageUnavailableError = store.PageUnavailableError
)

// Error sentinels surfaced by database operations, Load, CheckIntegrity,
// and the durability layer; match with errors.Is.
var (
	// ErrChecksum marks detected page corruption.
	ErrChecksum = store.ErrChecksum
	// ErrInjectedFault marks an error produced by a FaultPolicy.
	ErrInjectedFault = store.ErrInjectedFault
	// ErrAllPinned marks a buffer pool with no evictable frame.
	ErrAllPinned = store.ErrAllPinned
	// ErrBadPage marks an out-of-range page reference in a restored
	// image.
	ErrBadPage = store.ErrBadPage
	// ErrPageUnavailable marks a quarantined page skipped by a
	// degraded-mode query.
	ErrPageUnavailable = store.ErrPageUnavailable
	// ErrWALCrash marks operations against a MemWALFS after its
	// simulated power loss fired.
	ErrWALCrash = store.ErrWALCrash
	// ErrNoWAL is returned by Checkpoint and Scrub on a database opened
	// without a write-ahead log.
	ErrNoWAL = errors.New("segdb: database has no write-ahead log (open with WithWAL)")
	// ErrInvalidArgument marks a request the database rejected before
	// doing any work: coordinates outside the 16384x16384 world, a
	// malformed rectangle, a nonexistent segment ID.
	ErrInvalidArgument = errors.New("segdb: invalid argument")
)

// CanceledError is the type of ErrCanceled.
type CanceledError struct{}

// Error implements error.
func (CanceledError) Error() string { return "segdb: query canceled by visitor" }

// ErrCanceled reports that a visitor callback stopped a query early.
// It never escapes the public API — visitor-initiated stops return nil,
// and context-initiated stops return the context's error — but batch
// visitors running under WindowBatchCtx or OverlayCtx may observe it
// internally, and custom code threading cancellation through
// parallelRange-style pools can reuse it. Match with errors.Is.
var ErrCanceled error = CanceledError{}

// ErrCode is the stable wire classification of an error: a short
// lower_snake string carried in API error responses and mapped to an
// HTTP status by the serving tier. Codes are append-only — the mapping
// from error to code is pinned by a test and never changes for an
// existing error.
type ErrCode string

// The error code table. HTTPStatus defines the wire status each code
// travels as.
const (
	// CodeOK classifies a nil error.
	CodeOK ErrCode = "ok"
	// CodeCanceled classifies context.Canceled (and the internal
	// visitor-stop sentinel, should it ever leak): the client went away.
	CodeCanceled ErrCode = "canceled"
	// CodeDeadline classifies context.DeadlineExceeded: the per-request
	// timeout expired and the query was aborted at page-fetch
	// granularity.
	CodeDeadline ErrCode = "deadline_exceeded"
	// CodeInvalid classifies ErrInvalidArgument: the request was
	// malformed and no work was done.
	CodeInvalid ErrCode = "invalid_argument"
	// CodeUnavailable classifies ErrPageUnavailable: a quarantined page
	// made (part of) the data temporarily unreadable.
	CodeUnavailable ErrCode = "unavailable"
	// CodeChecksum classifies ErrChecksum: detected page corruption.
	CodeChecksum ErrCode = "checksum"
	// CodeIOFault classifies ErrInjectedFault: a (simulated) device
	// fault that was not absorbed by the retry policy.
	CodeIOFault ErrCode = "io_fault"
	// CodePoolExhausted classifies ErrAllPinned: every buffer frame was
	// pinned, a transient overload condition.
	CodePoolExhausted ErrCode = "pool_exhausted"
	// CodeBadPage classifies ErrBadPage: an out-of-range page reference,
	// i.e. structural corruption.
	CodeBadPage ErrCode = "bad_page"
	// CodeNoWAL classifies ErrNoWAL: a durability operation on a
	// database opened without a log.
	CodeNoWAL ErrCode = "no_wal"
	// CodeWALCrash classifies ErrWALCrash: the crash-injection
	// filesystem fired (harnesses only).
	CodeWALCrash ErrCode = "wal_crash"
	// CodeInternal classifies every error the table does not name.
	CodeInternal ErrCode = "internal"
)

// ErrorCode classifies err into the stable code table. Wrapped errors
// are matched with errors.Is, outermost semantic first: a
// PageUnavailableError whose cause is a checksum failure classifies as
// CodeUnavailable (the caller-visible condition), not CodeChecksum.
// Unrecognized errors classify as CodeInternal.
func ErrorCode(err error) ErrCode {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, context.Canceled), errors.Is(err, ErrCanceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, ErrInvalidArgument):
		return CodeInvalid
	case errors.Is(err, ErrPageUnavailable):
		return CodeUnavailable
	case errors.Is(err, ErrChecksum):
		return CodeChecksum
	case errors.Is(err, ErrInjectedFault):
		return CodeIOFault
	case errors.Is(err, ErrAllPinned):
		return CodePoolExhausted
	case errors.Is(err, ErrBadPage):
		return CodeBadPage
	case errors.Is(err, ErrNoWAL):
		return CodeNoWAL
	case errors.Is(err, ErrWALCrash):
		return CodeWALCrash
	default:
		return CodeInternal
	}
}

// HTTPStatus returns the HTTP status code a response carrying this
// error code travels with. Client conditions map to 4xx (499 is the
// de-facto "client closed request" status), data-corruption and
// internal conditions to 5xx, and transient overload or quarantine to
// 503 so clients know a retry may succeed.
func (c ErrCode) HTTPStatus() int {
	switch c {
	case CodeOK:
		return 200
	case CodeInvalid:
		return 400
	case CodeCanceled:
		return 499
	case CodeDeadline:
		return 504
	case CodeUnavailable, CodePoolExhausted:
		return 503
	case CodeChecksum, CodeIOFault, CodeBadPage, CodeNoWAL, CodeWALCrash, CodeInternal:
		return 500
	}
	return 500
}
