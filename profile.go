package segdb

import (
	"sync/atomic"

	"segdb/internal/obs"
)

// queryKind indexes the per-kind profile slots.
type queryKind int

const (
	qkWindow queryKind = iota
	qkNearest
	qkNearestK
	qkIncidentAt
	qkOtherEndpoint
	qkEnclosingPolygon
	qkOverlay
	qkWindowBatch
	numQueryKinds
)

var queryKindNames = [numQueryKinds]string{
	qkWindow:           "window",
	qkNearest:          "nearest",
	qkNearestK:         "nearestk",
	qkIncidentAt:       "incident",
	qkOtherEndpoint:    "otherendpoint",
	qkEnclosingPolygon: "polygon",
	qkOverlay:          "overlay",
	qkWindowBatch:      "windowbatch",
}

// String returns the kind name used in QueryInfo.Kind and Profile.
func (k queryKind) String() string { return queryKindNames[k] }

// kindProfile accumulates one query kind's counts and histograms. All
// fields are atomic: queries fold themselves in concurrently with no
// extra locking.
type kindProfile struct {
	count   atomic.Uint64
	errors  atomic.Uint64
	latency obs.Histogram // wall time, microseconds
	disk    obs.Histogram // disk accesses (reads + write-backs)
}

// QueryKindProfile is one query kind's aggregate in a Profile snapshot.
type QueryKindProfile struct {
	// Kind is the query kind name ("window", "nearestk", ...), the same
	// string a Tracer sees in QueryInfo.Kind.
	Kind string
	// Count is the number of completed queries of this kind, Errors the
	// subset that returned a non-nil error (including context
	// cancellation).
	Count, Errors uint64
	// LatencyMicros is the distribution of per-query wall time in
	// microseconds, in logarithmic buckets.
	LatencyMicros HistogramSnapshot
	// DiskAccesses is the distribution of per-query disk accesses
	// (reads plus eviction write-backs), the paper's primary currency.
	DiskAccesses HistogramSnapshot
}

// Profile is a snapshot of the database's per-query-kind latency and
// disk-access distributions; see DB.Profile.
type Profile struct {
	// Queries holds one entry per query kind that has completed at
	// least once, in a fixed kind order.
	Queries []QueryKindProfile
}

// Profile snapshots the per-kind query profile accumulated since Open.
// Every query — context-threaded or legacy — is folded in on
// completion, so the histograms cover all traffic. Safe to call while
// queries are in flight; each kind's snapshot is internally consistent
// to within the queries completing during the call.
func (db *DB) Profile() Profile {
	var p Profile
	for k := queryKind(0); k < numQueryKinds; k++ {
		c := &db.prof[k]
		n := c.count.Load()
		if n == 0 {
			continue
		}
		p.Queries = append(p.Queries, QueryKindProfile{
			Kind:          k.String(),
			Count:         n,
			Errors:        c.errors.Load(),
			LatencyMicros: c.latency.Snapshot(),
			DiskAccesses:  c.disk.Snapshot(),
		})
	}
	return p
}
