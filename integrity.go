package segdb

import (
	"errors"
	"fmt"
	"strings"

	"segdb/internal/core"
)

// IntegrityReport is the outcome of DB.CheckIntegrity: a few size facts
// plus every problem found. An empty Problems list means the database
// passed all checks.
type IntegrityReport struct {
	// Kind is the index kind that was checked.
	Kind Kind
	// Segments is the number of records in the segment table.
	Segments int
	// IndexPages and TablePages are the page counts of the two disks.
	IndexPages int
	TablePages int
	// PoolHits and PoolRequests snapshot the buffer pools' lifetime cache
	// behaviour (both disks combined) as of the check; PoolHitRatio is
	// hits/requests, 0 for an untouched database.
	PoolHits     uint64
	PoolRequests uint64
	PoolHitRatio float64
	// Problems describes each violation found, in check order.
	Problems []string

	firstErr error
}

// Healthy reports whether every check passed.
func (r *IntegrityReport) Healthy() bool { return len(r.Problems) == 0 }

// Err returns nil for a healthy report; otherwise an error carrying all
// problems. When the first failing check produced a typed error (e.g. a
// *store.ChecksumError), errors.Is / errors.As unwrap to it.
func (r *IntegrityReport) Err() error {
	if r.Healthy() {
		return nil
	}
	summary := fmt.Sprintf("segdb: integrity check found %d problem(s): %s",
		len(r.Problems), strings.Join(r.Problems, "; "))
	if r.firstErr != nil {
		return fmt.Errorf("%s: %w", summary, r.firstErr)
	}
	return errors.New(summary)
}

func (r *IntegrityReport) add(err error) {
	if err == nil {
		return
	}
	r.Problems = append(r.Problems, err.Error())
	if r.firstErr == nil {
		r.firstErr = err
	}
}

// CheckIntegrity runs every self-check the database supports and returns
// the combined report:
//
//   - both disks' free lists (in-range, duplicate-free page ids);
//   - both disks' page checksums (every in-use page matches its CRC32);
//   - the segment table's record count against the pages it holds;
//   - the index's own structural invariants (Validate);
//   - the index's segment count against the table's.
//
// Checking reads pages and therefore perturbs the paper's disk-access and
// comparison counters; run it outside measured phases. With an active
// FaultPolicy the injected faults surface as problems like any real ones.
//
// CheckIntegrity takes the writer lock: it must not (and, enforced here,
// cannot) run concurrently with queries, whose in-flight pins and page
// traffic would make the structural checks race.
func (db *DB) CheckIntegrity() *IntegrityReport {
	db.mu.Lock()
	defer db.mu.Unlock()
	pre := core.Snapshot(db.index)
	r := &IntegrityReport{
		Kind:         db.kind,
		Segments:     db.table.Len(),
		IndexPages:   db.pool.Disk().PageCount(),
		TablePages:   db.table.Disk().PageCount(),
		PoolHits:     pre.PoolHits,
		PoolRequests: pre.PoolRequests,
		PoolHitRatio: pre.HitRatio(),
	}
	if err := db.pool.Disk().CheckFreeList(); err != nil {
		r.add(fmt.Errorf("index disk: %w", err))
	}
	if err := db.pool.Disk().VerifyChecksums(); err != nil {
		r.add(fmt.Errorf("index disk: %w", err))
	}
	if err := db.table.Disk().CheckFreeList(); err != nil {
		r.add(fmt.Errorf("table disk: %w", err))
	}
	if err := db.table.Disk().VerifyChecksums(); err != nil {
		r.add(fmt.Errorf("table disk: %w", err))
	}
	r.add(db.table.CheckIntegrity())
	if err := db.index.Validate(); err != nil {
		r.add(fmt.Errorf("%s: %w", db.index.Name(), err))
	}
	if n := db.index.Len(); n > db.table.Len() {
		r.add(fmt.Errorf("segdb: index holds %d segments, table only %d", n, db.table.Len()))
	}
	return r
}
