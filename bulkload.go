package segdb

import (
	"fmt"

	"segdb/internal/core"
	"segdb/internal/geom"
	"segdb/internal/grid"
	"segdb/internal/pmr"
	"segdb/internal/rplus"
	"segdb/internal/rstar"
	"segdb/internal/seg"
	"segdb/internal/store"
)

// AddBatch stores the segments and indexes them in one shot, returning
// their IDs in input order. On an empty database the index is built
// bottom-up through the bulk pipeline (internal/bulk): segments are
// sorted and partitioned in memory across GOMAXPROCS workers, then every
// index page is written exactly once, sequentially — for a county-sized
// map this is an order of magnitude fewer build disk accesses than
// calling Add per segment, and the result answers every query through
// the same code paths. The build is deterministic: the same batch
// produces a byte-identical disk image for any GOMAXPROCS setting.
//
// On a non-empty database AddBatch falls back to per-segment incremental
// insertion (the bulk builders construct whole indexes, not deltas); the
// call still succeeds, it is just not faster than a loop over Add.
//
// AddBatch holds the writer lock for the whole batch, so queries never
// observe a half-ingested batch.
func (db *DB) AddBatch(segs []Segment) ([]SegmentID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.addBatchLocked(segs)
}

func (db *DB) addBatchLocked(segs []Segment) ([]SegmentID, error) {
	if db.table.Len() != 0 {
		// Incremental fallback: the index already holds segments. The
		// whole batch is sealed by one WAL commit, so after a crash the
		// batch either fully recovers or fully rolls back.
		ids := make([]SegmentID, 0, len(segs))
		for _, s := range segs {
			id, err := db.addLocked(s)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		return ids, db.walCommit()
	}
	ids := make([]SegmentID, 0, len(segs))
	for _, s := range segs {
		if !geom.World().ContainsPoint(s.P1) || !geom.World().ContainsPoint(s.P2) {
			return nil, fmt.Errorf("%w: segment %v outside the %dx%d world", ErrInvalidArgument, s, WorldSize, WorldSize)
		}
		id, err := db.table.Append(s)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	if err := db.rebuildBulk(ids); err != nil {
		return nil, err
	}
	if db.walfs != nil {
		// The bulk build replaced the index disk wholesale, so incremental
		// page logging cannot describe it; cut a full checkpoint instead.
		db.walSeq++
		if err := db.checkpointLocked(); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// rebuildBulk replaces the database's (empty) index with one bulk-built
// over ids, on a fresh disk so the old index's abandoned pages do not
// linger in the file. A fault policy live on the old disk carries over.
func (db *DB) rebuildBulk(ids []seg.ID) error {
	disk := store.NewDisk(db.opts.PageSize)
	if p := db.pool.Disk().FaultPolicy(); p != nil {
		disk.SetFaultPolicy(p)
	}
	// Runtime disk state carries over to the successor disk: the retry
	// policy, and write journaling when a WAL is attached.
	if rp := db.pool.Disk().RetryPolicy(); rp != nil {
		disk.SetRetryPolicy(rp)
	}
	if db.walfs != nil {
		disk.SetJournal(true)
	}
	pool := store.NewShardedPool(disk, db.opts.PoolPages, db.opts.PoolShards)
	var (
		ix  core.Index
		err error
	)
	switch db.kind {
	case RStarTree, ClassicRTree:
		ix, err = rstar.BulkLoad(pool, db.table, db.opts.rstarConfig(db.kind), ids)
	case RPlusTree, KDBTree:
		ix, err = rplus.BulkLoad(pool, db.table, db.opts.rplusConfig(db.kind), ids)
	case PMRQuadtree:
		ix, err = pmr.BulkLoad(pool, db.table, db.opts.pmrConfig(), ids)
	case UniformGrid:
		ix, err = grid.BulkLoad(pool, db.table, db.opts.gridConfig(), ids)
	default:
		err = fmt.Errorf("segdb: unknown index kind %v", db.kind)
	}
	if err != nil {
		return err
	}
	db.pool = pool
	db.index = ix
	return nil
}
