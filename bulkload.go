package segdb

import (
	"fmt"

	"segdb/internal/core"
	"segdb/internal/geom"
	"segdb/internal/grid"
	"segdb/internal/pmr"
	"segdb/internal/rplus"
	"segdb/internal/rstar"
	"segdb/internal/seg"
	"segdb/internal/store"
)

// AddBatch stores the segments and indexes them in one shot, returning
// their IDs in input order. On an empty database the index is built
// bottom-up through the bulk pipeline (internal/bulk): segments are
// sorted and partitioned in memory across GOMAXPROCS workers, then every
// index page is written exactly once, sequentially — for a county-sized
// map this is an order of magnitude fewer build disk accesses than
// calling Add per segment, and the result answers every query through
// the same code paths. The build is deterministic: the same batch
// produces a byte-identical disk image for any GOMAXPROCS setting.
//
// On a non-empty database AddBatch is a bulk merge: the batch is
// appended to the segment table and the index is rebuilt bottom-up over
// the union of its live segments and the batch — bulk-class disk
// accesses (every index page written once, sequentially) instead of the
// per-segment insert-split churn a loop over Add pays. Each such merge
// is counted in Metrics.BulkMerges.
//
// AddBatch holds the writer lock for the whole batch, so queries never
// observe a half-ingested batch. In staged-ingest mode the batch is
// staged (one WAL commit) and compacted inline — readers keep reading
// throughout; the batch appears atomically.
func (db *DB) AddBatch(segs []Segment) ([]SegmentID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.stagedMode() {
		return db.addBatchStagedLocked(segs)
	}
	return db.addBatchLocked(segs)
}

// appendBatch validates and appends the batch to the segment table,
// returning the new ids in input order.
func (db *DB) appendBatch(segs []Segment) ([]SegmentID, error) {
	ids := make([]SegmentID, 0, len(segs))
	for _, s := range segs {
		if !geom.World().ContainsPoint(s.P1) || !geom.World().ContainsPoint(s.P2) {
			return nil, fmt.Errorf("%w: segment %v outside the %dx%d world", ErrInvalidArgument, s, WorldSize, WorldSize)
		}
		id, err := db.table.Append(s)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func (db *DB) addBatchLocked(segs []Segment) ([]SegmentID, error) {
	merge := db.table.Len() != 0
	var all []seg.ID
	if merge {
		// Bulk merge: the survivors of the current index (live segments
		// only — deleted table slots stay dead) plus the batch.
		existing, err := db.collectLiveIDs(db.index)
		if err != nil {
			return nil, err
		}
		all = existing
	}
	ids, err := db.appendBatch(segs)
	if err != nil {
		return nil, err
	}
	all = append(all, ids...) // batch ids are allocated past every existing id
	if err := db.rebuildBulk(all); err != nil {
		return nil, err
	}
	if merge {
		db.bulkMerges.Add(1)
	}
	if db.walfs != nil {
		// The bulk build replaced the index disk wholesale, so incremental
		// page logging cannot describe it; cut a full checkpoint instead.
		db.walSeq++
		if err := db.checkpointLocked(); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// addBatchStagedLocked ingests a batch in staged-ingest mode: every
// segment is staged (readers see the batch as soon as the snapshot
// publishes, without the index rebuild in their way), the staged
// operations are sealed by one WAL commit, and the staging tier is
// compacted inline — the batch reaches the disk index at bulk-build
// cost while concurrent readers never block.
func (db *DB) addBatchStagedLocked(segs []Segment) ([]SegmentID, error) {
	ids, err := db.appendBatch(segs)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		db.mem.Add(id, segs[i])
		db.version++
	}
	db.stagedOps.Add(uint64(len(ids)))
	db.publishLocked()
	if db.wal != nil {
		for i, id := range ids {
			s := segs[i]
			if err := db.wal.AppendStaged(store.WALStagedOp{
				ID:     uint32(id),
				Coords: [4]int32{s.P1.X, s.P1.Y, s.P2.X, s.P2.Y},
			}); err != nil {
				return nil, err
			}
		}
		if err := db.walCommit(); err != nil {
			return nil, err
		}
	}
	if err := db.compactLocked(); err != nil {
		return nil, err
	}
	db.bulkMerges.Add(1)
	return ids, nil
}

// rebuildBulk replaces the database's (empty) index with one bulk-built
// over ids, on a fresh disk so the old index's abandoned pages do not
// linger in the file. A fault policy live on the old disk carries over.
func (db *DB) rebuildBulk(ids []seg.ID) error {
	disk := store.NewDisk(db.opts.PageSize)
	if p := db.pool.Disk().FaultPolicy(); p != nil {
		disk.SetFaultPolicy(p)
	}
	// Runtime disk state carries over to the successor disk: the retry
	// policy, and write journaling when a WAL is attached.
	if rp := db.pool.Disk().RetryPolicy(); rp != nil {
		disk.SetRetryPolicy(rp)
	}
	if db.walfs != nil {
		disk.SetJournal(true)
	}
	pool := store.NewShardedPool(disk, db.opts.PoolPages, db.opts.PoolShards)
	var (
		ix  core.Index
		err error
	)
	switch db.kind {
	case RStarTree, ClassicRTree:
		ix, err = rstar.BulkLoad(pool, db.table, db.opts.rstarConfig(db.kind), ids)
	case RPlusTree, KDBTree:
		ix, err = rplus.BulkLoad(pool, db.table, db.opts.rplusConfig(db.kind), ids)
	case PMRQuadtree:
		ix, err = pmr.BulkLoad(pool, db.table, db.opts.pmrConfig(), ids)
	case UniformGrid:
		ix, err = grid.BulkLoad(pool, db.table, db.opts.gridConfig(), ids)
	default:
		err = fmt.Errorf("segdb: unknown index kind %v", db.kind)
	}
	if err != nil {
		return err
	}
	db.pool = pool
	db.index = ix
	return nil
}
