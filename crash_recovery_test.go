package segdb

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"testing"
)

// crashOp is one step of the torture workload: an Add, a Delete of an
// earlier segment, or a mid-workload Checkpoint (a non-mutation, so the
// sweep also crosses the checkpoint protocol's own write points).
type crashOp struct {
	ckpt bool
	del  bool
	id   SegmentID
	seg  Segment
}

// crashOps builds a deterministic mixed workload over nAdds segments:
// mostly adds, a delete of an earlier id every ninth add, and one
// checkpoint halfway through.
func crashOps(nAdds int, seed int64) []crashOp {
	segs := crashSegments(nAdds, seed)
	var ops []crashOp
	deleted := make(map[SegmentID]bool)
	for i, s := range segs {
		ops = append(ops, crashOp{seg: s})
		if i%9 == 8 {
			// IDs are assigned sequentially from 1, so (i+1)/2 always
			// names a segment added earlier in the workload.
			target := SegmentID((i + 1) / 2)
			if target >= 1 && !deleted[target] {
				deleted[target] = true
				ops = append(ops, crashOp{del: true, id: target})
			}
		}
		if i == nAdds/2 {
			ops = append(ops, crashOp{ckpt: true})
		}
	}
	return ops
}

func (op crashOp) apply(db *DB) error {
	switch {
	case op.ckpt:
		return db.Checkpoint()
	case op.del:
		return db.Delete(op.id)
	default:
		_, err := db.Add(op.seg)
		return err
	}
}

// crashReplayPrefix builds a fresh WAL-less database of the given kind
// and applies the first k mutations of the workload (checkpoints are
// no-ops without a WAL and are skipped).
func crashReplayPrefix(t *testing.T, kind Kind, ops []crashOp, k uint64) *DB {
	t.Helper()
	db, err := Open(kind)
	if err != nil {
		t.Fatalf("Open(%v): %v", kind, err)
	}
	var applied uint64
	for _, op := range ops {
		if op.ckpt {
			continue
		}
		if applied == k {
			break
		}
		if err := op.apply(db); err != nil {
			t.Fatalf("clean replay of %v mutation %d: %v", kind, applied, err)
		}
		applied++
	}
	if applied != k {
		t.Fatalf("workload has only %d mutations, recovery reported seq %d", applied, k)
	}
	return db
}

// crashFingerprint captures every paper query's (result, error) pair as
// one comparable string: three windows, a 3-nearest probe, incident and
// other-endpoint traversals, and an enclosing-polygon walk.
func crashFingerprint(t *testing.T, db *DB, probe []Segment) string {
	t.Helper()
	var b strings.Builder
	for _, r := range []Rect{World(), RectOf(100, 100, 6000, 6000), RectOf(7000, 1000, 13000, 9000)} {
		var ids []SegmentID
		err := db.Window(r, func(id SegmentID, _ Segment) bool { ids = append(ids, id); return true })
		slices.Sort(ids)
		fmt.Fprintf(&b, "win=%v err=%v\n", ids, err)
	}
	for _, p := range []Point{probe[0].P1, probe[7].P2, Pt(8000, 8000)} {
		nr, err := db.NearestK(p, 3)
		fmt.Fprintf(&b, "near=%v err=%v\n", nr, err)
		var inc []SegmentID
		ierr := db.IncidentAt(p, func(id SegmentID, _ Segment) bool { inc = append(inc, id); return true })
		slices.Sort(inc)
		fmt.Fprintf(&b, "inc=%v err=%v\n", inc, ierr)
		poly, perr := db.EnclosingPolygon(p)
		fmt.Fprintf(&b, "poly=%v err=%v\n", poly, perr)
	}
	var oth []SegmentID
	err := db.OtherEndpoint(1, probe[0].P1, func(id SegmentID, _ Segment) bool { oth = append(oth, id); return true })
	slices.Sort(oth)
	fmt.Fprintf(&b, "oth=%v err=%v\n", oth, err)
	return b.String()
}

// TestCrashRecoveryTorture is the durability acceptance test: for every
// index kind, run a mixed workload on a crashing WAL filesystem, crash
// it after N writes for a sweep of N covering every phase (including
// the mid-workload checkpoint), recover from the surviving files alone,
// and require (a) a healthy integrity check and (b) all five paper
// queries identical to a clean sequential replay of exactly the
// committed mutation prefix.
func TestCrashRecoveryTorture(t *testing.T) {
	const nAdds = 48
	const seed = 77
	ops := crashOps(nAdds, seed)
	probe := crashSegments(nAdds, seed)

	for _, kind := range crashKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			// Crash-free run bounds the sweep: workload writes only
			// (SetCrashAfterWrites(0, ...) leaves crashing disabled but
			// resets the write counter after Open's initial checkpoint).
			clean := NewMemWALFS()
			db, err := Open(kind, WithWALFS(clean))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			clean.SetCrashAfterWrites(0, seed)
			for _, op := range ops {
				if err := op.apply(db); err != nil {
					t.Fatalf("crash-free workload: %v", err)
				}
			}
			total := clean.Writes()
			if total == 0 {
				t.Fatal("workload produced no WAL writes")
			}

			stride := uint64(1)
			if testing.Short() {
				stride = total / 25
				if stride == 0 {
					stride = 1
				}
			}

			// Reference fingerprints, cached by committed-prefix length:
			// many crash points recover to the same mutation count.
			refFP := make(map[uint64]string)
			for n := uint64(1); n <= total; n += stride {
				wfs := NewMemWALFS()
				db, err := Open(kind, WithWALFS(wfs))
				if err != nil {
					t.Fatalf("n=%d: Open: %v", n, err)
				}
				wfs.SetCrashAfterWrites(n, int64(n)*31+seed)
				var opErr error
				for _, op := range ops {
					if opErr = op.apply(db); opErr != nil {
						break
					}
				}
				if opErr != nil && !errors.Is(opErr, ErrWALCrash) {
					t.Fatalf("n=%d: workload died with a non-crash error: %v", n, opErr)
				}
				if opErr == nil && wfs.Crashed() {
					// The crash tore the very last write at full length:
					// the workload completed, the filesystem is still down.
					t.Logf("n=%d: crash fired on the final write", n)
				}

				wfs.Reboot()
				rec, rep, err := RecoverFS(wfs)
				if err != nil {
					t.Fatalf("n=%d: RecoverFS: %v", n, err)
				}
				if r := rec.CheckIntegrity(); !r.Healthy() {
					t.Fatalf("n=%d: recovered db unhealthy: %v", n, r.Err())
				}
				k := rep.Seq
				want, ok := refFP[k]
				if !ok {
					want = crashFingerprint(t, crashReplayPrefix(t, kind, ops, k), probe)
					refFP[k] = want
				}
				if got := crashFingerprint(t, rec, probe); got != want {
					t.Fatalf("n=%d: recovered queries diverge from clean replay of %d mutations:\nrecovered:\n%s\nclean:\n%s", n, k, got, want)
				}
			}
		})
	}
}
