package segdb

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// normalizeParallelism clamps a requested worker count: zero or negative
// means "one worker per available CPU".
func normalizeParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// WindowBatchCtx runs one window query per rectangle, fanning the
// queries across a worker pool, and returns one QueryStats per
// rectangle: stats[q] is exactly the cost of the window query over
// rects[q], whichever worker ran it and whatever else was in flight.
//
// visit is called as visit(query, id, s) for every segment s
// intersecting rects[query]; it may be invoked from several goroutines
// at once (synchronize any shared state it touches) and returning false
// cancels the whole batch (a nil error). Canceling ctx aborts every
// in-flight query before its next page fetch and returns ctx's error;
// queries not yet started never run, leaving their stats zero.
// parallelism <= 0 uses GOMAXPROCS workers.
//
// The batch holds one read acquisition — the database's reader lock,
// or in staged-ingest mode one pinned snapshot, so every rectangle of
// the batch sees the same version. It runs concurrently with other
// queries but never against a half-applied write. Per-query result sets
// are identical to sequential execution; the paper's counters (disk page
// requests, segment comparisons, bounding box computations) total
// exactly the same as a sequential replay, though the split of page
// requests into pool hits versus misses depends on how the workers
// interleave.
func (db *DB) WindowBatchCtx(ctx context.Context, rects []Rect, parallelism int, visit func(query int, id SegmentID, s Segment) bool) ([]QueryStats, error) {
	h := db.acquireRead()
	defer h.release()
	ix := h.index()
	if len(rects) == 0 {
		return nil, nil
	}
	stats := make([]QueryStats, len(rects))
	var stop atomic.Bool // a visitor said stop; drain the remaining queries
	err := parallelRange(len(rects), normalizeParallelism(parallelism), func(q int) error {
		o := db.begin(ctx, qkWindowBatch)
		o.SetEpoch(h.version())
		canceled := false
		werr := ix.WindowObs(rects[q], func(id SegmentID, s Segment) bool {
			if stop.Load() {
				canceled = true
				return false
			}
			if !visit(q, id, s) {
				stop.Store(true)
				canceled = true
				return false
			}
			return true
		}, o)
		stats[q], _ = db.finish(qkWindowBatch, o, werr)
		if werr != nil {
			return werr
		}
		if canceled {
			return ErrCanceled
		}
		return nil
	})
	if errors.Is(err, ErrCanceled) {
		// The batch's own visitor stopped it; that is not a failure.
		err = nil
	}
	return stats, err
}

// WindowBatch is a convenience wrapper over WindowBatchCtx with a
// background context and the per-query stats discarded.
func (db *DB) WindowBatch(rects []Rect, parallelism int, visit func(query int, id SegmentID, s Segment) bool) error {
	_, err := db.WindowBatchCtx(context.Background(), rects, parallelism, visit)
	return err
}

// parallelRange fans the half-open range [0, n) across a worker pool,
// calling work(i) for each index. The first error cancels the remaining
// range (in-flight calls still finish) and is returned.
func parallelRange(n, workers int, work func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := work(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := work(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
