package segdb

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// normalizeParallelism clamps a requested worker count: zero or negative
// means "one worker per available CPU".
func normalizeParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// WindowBatch runs one window query per rectangle, fanning the queries
// across a worker pool. visit is called as visit(query, id, s) for every
// segment s intersecting rects[query]; it may be invoked from several
// goroutines at once (synchronize any shared state it touches) and
// returning false cancels the whole batch. parallelism <= 0 uses
// GOMAXPROCS workers.
//
// The batch holds the database's reader lock, so it runs concurrently
// with other queries but never with writes. Per-query result sets are
// identical to sequential execution; the paper's counters (disk page
// requests, segment comparisons, bounding box computations) total exactly
// the same as a sequential replay, though the split of page requests into
// pool hits versus misses depends on how the workers interleave.
func (db *DB) WindowBatch(rects []Rect, parallelism int, visit func(query int, id SegmentID, s Segment) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if len(rects) == 0 {
		return nil
	}
	workers := normalizeParallelism(parallelism)
	if workers > len(rects) {
		workers = len(rects)
	}
	if workers == 1 {
		for q, r := range rects {
			stop := false
			err := db.index.Window(r, func(id SegmentID, s Segment) bool {
				if !visit(q, id, s) {
					stop = true
					return false
				}
				return true
			})
			if err != nil || stop {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64 // next unclaimed rectangle
		stop     atomic.Bool  // a worker failed or visit said stop
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				q := int(next.Add(1)) - 1
				if q >= len(rects) {
					return
				}
				err := db.index.Window(rects[q], func(id SegmentID, s Segment) bool {
					if stop.Load() {
						return false
					}
					if !visit(q, id, s) {
						stop.Store(true)
						return false
					}
					return true
				})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// parallelRange fans the half-open range [0, n) across a worker pool,
// calling work(i) for each index. The first error cancels the remaining
// range (in-flight calls still finish) and is returned.
func parallelRange(n, workers int, work func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := work(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := work(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
