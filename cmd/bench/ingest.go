// The staged-ingest experiment: sustained single-segment writes landing
// against concurrent window readers, measured twice over the same base
// map and write stream — once in staged-ingest mode (MVCC snapshots, an
// LSM staging tier, readers take no lock) and once in the legacy
// exclusive-lock mode (every Add mutates the index in place under the
// writer lock while readers block on the RWMutex). The rows become the
// artifact's "ingest" section: writes/sec and the reader latency tail
// under identical write pressure, plus the staged run's compaction and
// reader-lock counters (the latter must be zero — that is the whole
// point of the design).
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"segdb"
)

// ingestModeResult is one side of the comparison: the write throughput
// the mode sustained and the latency distribution its concurrent
// readers observed while the writes were landing.
type ingestModeResult struct {
	WritesPerSec    float64 `json:"writes_per_sec"`
	ReaderOps       int     `json:"reader_ops"`
	ReaderP50Micros int64   `json:"reader_p50_micros"`
	ReaderP99Micros int64   `json:"reader_p99_micros"`
}

// ingestResult is the artifact's "ingest" section.
type ingestResult struct {
	Kind     string           `json:"kind"`
	Segments int              `json:"segments"`
	Writes   int              `json:"writes"`
	Readers  int              `json:"readers"`
	Staged   ingestModeResult `json:"staged"`
	Locked   ingestModeResult `json:"exclusive_lock"`
	// WriteSpeedup is staged writes/sec over exclusive-lock writes/sec.
	WriteSpeedup float64 `json:"write_speedup"`
	// StagedCompactions counts the staged run's threshold-triggered
	// compactions plus the explicit final one.
	StagedCompactions uint64 `json:"staged_compactions"`
	// StagedLockedReads counts reader-lock acquisitions on the staged
	// run's query paths. Anything but zero is a regression.
	StagedLockedReads uint64 `json:"staged_locked_reads"`
}

// makeStream generates n deterministic short segments scattered over the
// world — the write stream both modes ingest.
func makeStream(n int, seed int64) []segdb.Segment {
	rng := rand.New(rand.NewSource(seed))
	segs := make([]segdb.Segment, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Int31n(segdb.WorldSize - 257)
		y := rng.Int31n(segdb.WorldSize - 257)
		segs = append(segs, segdb.Seg(x, y, x+rng.Int31n(255)+1, y+rng.Int31n(255)+1))
	}
	return segs
}

func quantileMicros(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runIngestMode drives one database: readers goroutines loop window
// queries (timing each) while the caller's goroutine lands the write
// stream one Add at a time. Readers stop once the stream is fully
// ingested, but each completes at least one query so the latency rows
// are never empty.
func runIngestMode(db *segdb.DB, stream []segdb.Segment, rects []segdb.Rect, readers int) (ingestModeResult, error) {
	sink := func(segdb.SegmentID, segdb.Segment) bool { return true }
	var stop atomic.Bool
	var wg sync.WaitGroup
	lats := make([][]int64, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j == 0 || !stop.Load(); j++ {
				r := rects[(j*readers+i)%len(rects)]
				t := time.Now()
				if err := db.Window(r, sink); err != nil {
					errs[i] = err
					return
				}
				lats[i] = append(lats[i], time.Since(t).Microseconds())
			}
		}(i)
	}
	start := time.Now()
	var werr error
	for _, s := range stream {
		if _, err := db.Add(s); err != nil {
			werr = err
			break
		}
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	if werr != nil {
		return ingestModeResult{}, werr
	}
	for _, err := range errs {
		if err != nil {
			return ingestModeResult{}, err
		}
	}
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return ingestModeResult{
		WritesPerSec:    float64(len(stream)) / elapsed.Seconds(),
		ReaderOps:       len(all),
		ReaderP50Micros: quantileMicros(all, 0.5),
		ReaderP99Micros: quantileMicros(all, 0.99),
	}, nil
}

// collectIngestStats preloads the base map (bulk) into two R*-tree
// databases — staged-ingest and legacy exclusive-lock — then runs the
// identical write storm against each with readers concurrent window
// queriers, and finally compacts the staged run.
func collectIngestStats(m *segdb.MapData, writes, readers int) (*ingestResult, error) {
	stream := makeStream(writes, 8871992)
	rects := makeWindows(192, 40)
	threshold := writes / 8
	if threshold < 256 {
		threshold = 256
	}

	staged, err := segdb.Open(segdb.RStarTree,
		segdb.WithStagedIngest(), segdb.WithCompactThreshold(threshold))
	if err != nil {
		return nil, err
	}
	if _, err := staged.AddBatch(m.Segments); err != nil {
		return nil, err
	}
	locked, err := segdb.Open(segdb.RStarTree)
	if err != nil {
		return nil, err
	}
	if _, err := locked.AddBatch(m.Segments); err != nil {
		return nil, err
	}

	res := &ingestResult{
		Kind:     segdb.RStarTree.String(),
		Segments: len(m.Segments),
		Writes:   writes,
		Readers:  readers,
	}
	if res.Staged, err = runIngestMode(staged, stream, rects, readers); err != nil {
		return nil, fmt.Errorf("staged: %w", err)
	}
	if res.Locked, err = runIngestMode(locked, stream, rects, readers); err != nil {
		return nil, fmt.Errorf("exclusive-lock: %w", err)
	}
	res.StagedLockedReads = staged.LockedReads()
	if err := staged.Compact(); err != nil {
		return nil, err
	}
	res.StagedCompactions = staged.Metrics().Compactions
	if res.Locked.WritesPerSec > 0 {
		res.WriteSpeedup = res.Staged.WritesPerSec / res.Locked.WritesPerSec
	}
	return res, nil
}
