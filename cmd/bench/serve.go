package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"segdb"
	"segdb/api"
	"segdb/internal/router"
)

// serveResult is the artifact's "serve" section: the serving tier
// driven end to end — sharded router, HTTP server, result cache — by
// the deterministic zipfian pan/zoom load generator, over real loopback
// HTTP.
type serveResult struct {
	Segments    int     `json:"segments"`
	Shards      int     `json:"shards"`
	IndexKind   string  `json:"index_kind"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// Client-observed request latency over loopback, microseconds.
	LatencyP50Micros int64 `json:"latency_p50_micros"`
	LatencyP95Micros int64 `json:"latency_p95_micros"`
	LatencyP99Micros int64 `json:"latency_p99_micros"`
	// Result-cache effectiveness under the zipfian workload.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// Workload mix actually generated.
	WindowOps   int `json:"window_ops"`
	NearestOps  int `json:"nearest_ops"`
	IncidentOps int `json:"incident_ops"`
	// PerShardDiskAccesses is each shard's cumulative disk accesses after
	// the run (build included), in shard order — the balance check.
	PerShardDiskAccesses []uint64 `json:"per_shard_disk_accesses"`
}

// collectServeStats builds a sharded server over the county, serves it
// on an ephemeral loopback port, and replays a deterministic
// browsing-session workload against it from several client goroutines.
func collectServeStats(m *segdb.MapData, shards, requests, concurrency int) (*serveResult, error) {
	r, err := router.Build(segdb.RStarTree, m.Segments, shards)
	if err != nil {
		return nil, err
	}
	srv, err := api.NewServer(api.Config{Router: r})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, l) }()
	defer func() {
		cancel()
		<-done
	}()

	// Incidence probes draw from real endpoints.
	endpoints := make([]segdb.Point, 0, 512)
	for i := 0; i < len(m.Segments) && len(endpoints) < 512; i += len(m.Segments)/512 + 1 {
		endpoints = append(endpoints, m.Segments[i].P1)
	}

	base := "http://" + l.Addr().String()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		mix       [3]int
		firstErr  error
	)
	perWorker := requests / concurrency
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			c := api.NewClient(base, &http.Client{Timeout: 30 * time.Second})
			gen := api.NewLoadGen(api.LoadConfig{Seed: int64(worker + 1), Endpoints: endpoints})
			local := make([]time.Duration, 0, perWorker)
			var localMix [3]int
			for i := 0; i < perWorker; i++ {
				op := gen.Next()
				opStart := time.Now()
				var err error
				switch op.Kind {
				case api.OpWindow:
					_, err = c.Window(ctx, op.X1, op.Y1, op.X2, op.Y2)
				case api.OpNearest:
					_, err = c.Nearest(ctx, op.X, op.Y, op.K)
				case api.OpIncident:
					_, err = c.Incident(ctx, op.X, op.Y)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(opStart))
				localMix[op.Kind]++
			}
			mu.Lock()
			latencies = append(latencies, local...)
			for k, n := range localMix {
				mix[k] += n
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, fmt.Errorf("serve workload: %w", firstErr)
	}

	metrics, err := api.NewClient(base, nil).Metrics(context.Background())
	if err != nil {
		return nil, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quantile := func(q float64) int64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return int64(latencies[i] / time.Microsecond)
	}
	res := &serveResult{
		Segments:         r.Len(),
		Shards:           shards,
		IndexKind:        segdb.RStarTree.String(),
		Requests:         len(latencies),
		Concurrency:      concurrency,
		OpsPerSec:        float64(len(latencies)) / elapsed.Seconds(),
		LatencyP50Micros: quantile(0.50),
		LatencyP95Micros: quantile(0.95),
		LatencyP99Micros: quantile(0.99),
		CacheHitRatio:    metrics.CacheHitRatio,
		WindowOps:        mix[api.OpWindow],
		NearestOps:       mix[api.OpNearest],
		IncidentOps:      mix[api.OpIncident],
	}
	for _, sh := range metrics.PerShard {
		res.PerShardDiskAccesses = append(res.PerShardDiskAccesses, sh.DiskAccesses)
	}
	return res, nil
}
