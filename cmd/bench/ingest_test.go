package main

import (
	"os"
	"testing"

	"segdb"
)

// TestIngestGate is the staged-ingest smoke gate (`make bench-ingest`):
// a small write storm against concurrent readers in both modes, then
// the invariants the MVCC design promises — readers took zero locks,
// the threshold compacted the staging tier at least once, both modes
// answered every reader query, and after ingesting the identical
// stream the staged database serves exactly the same world window as
// the exclusive-lock one. Wall-clock throughput is recorded by `make
// bench`, not asserted here: this gate catches a correctness or
// lock-discipline regression, not noise.
func TestIngestGate(t *testing.T) {
	if os.Getenv("SEGDB_BENCH_INGEST") == "" {
		t.Skip("set SEGDB_BENCH_INGEST=1 to run the staged-ingest gate")
	}
	county, err := segdb.GenerateCounty("Charles")
	if err != nil {
		t.Fatal(err)
	}
	m := subsample(county, 3000)

	res, err := collectIngestStats(m, 600, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagedLockedReads != 0 {
		t.Errorf("staged run acquired %d reader locks on query paths, want 0", res.StagedLockedReads)
	}
	if res.StagedCompactions == 0 {
		t.Error("staged run never compacted (threshold compaction broken)")
	}
	if res.Staged.ReaderOps < res.Readers || res.Locked.ReaderOps < res.Readers {
		t.Errorf("reader ops %d staged / %d locked, want >= %d each",
			res.Staged.ReaderOps, res.Locked.ReaderOps, res.Readers)
	}
	if res.Staged.WritesPerSec <= 0 || res.Locked.WritesPerSec <= 0 {
		t.Errorf("non-positive write throughput: %+v", res)
	}

	// Equivalence: the same stream through both modes yields the same
	// answer (IDs included — both append in the same order).
	stream := makeStream(200, 1)
	staged, err := segdb.Open(segdb.UniformGrid, segdb.WithStagedIngest())
	if err != nil {
		t.Fatal(err)
	}
	locked, err := segdb.Open(segdb.UniformGrid)
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []*segdb.DB{staged, locked} {
		if _, err := db.AddBatch(m.Segments); err != nil {
			t.Fatal(err)
		}
		for _, s := range stream {
			if _, err := db.Add(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	world := segdb.RectOf(0, 0, segdb.WorldSize-1, segdb.WorldSize-1)
	collect := func(db *segdb.DB) map[segdb.SegmentID]segdb.Segment {
		got := map[segdb.SegmentID]segdb.Segment{}
		if err := db.Window(world, func(id segdb.SegmentID, s segdb.Segment) bool {
			got[id] = s
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	sg, lk := collect(staged), collect(locked)
	if len(sg) != len(lk) {
		t.Fatalf("world window: staged %d segments, exclusive-lock %d", len(sg), len(lk))
	}
	for id, s := range lk {
		if sg[id] != s {
			t.Fatalf("segment %d: staged %v, exclusive-lock %v", id, sg[id], s)
		}
	}
	if staged.LockedReads() != 0 {
		t.Errorf("equivalence staged db acquired %d reader locks, want 0", staged.LockedReads())
	}
}
