// Compression experiment for the artifact's "compression" section: every
// index kind bulk-built at page-compression levels 0, 1, and 2 over the
// same map, measuring what the v3 page formats buy (bytes per page,
// effective leaf fanout, disk accesses per query) and what they cost
// (page decode nanoseconds), while checking the query results stay
// identical to the classic format. The databases run over a deliberately
// small buffer pool so the page-count reduction shows up as fewer
// misses, not as a wash inside an all-resident pool.
package main

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"segdb"
	"segdb/internal/btree"
	"segdb/internal/geom"
	"segdb/internal/rpage"
	"segdb/internal/store"
)

// compressPoolPages keeps the compression workloads' pools smaller than
// their working sets at every level, so the accesses-per-query column
// reflects real misses.
const compressPoolPages = 32

// compressionSection is the artifact's "compression" section.
type compressionSection struct {
	// DecodeNs times one full page decode per format and level on
	// synthetic capacity-full pages: the R-tree node SoA decode and the
	// B+-tree leaf decode. This is the CPU price paid for the fanout.
	DecodeNs []decodeLevelRow `json:"decode_ns"`
	// Kinds holds the per-index-kind level sweep.
	Kinds []compressKindRow `json:"kinds"`
}

type decodeLevelRow struct {
	Level        int     `json:"level"`
	RNodeNs      float64 `json:"rnode_decode_ns"`
	RNodeEntries int     `json:"rnode_entries"`
	LeafNs       float64 `json:"btree_leaf_decode_ns"`
	LeafEntries  int     `json:"btree_leaf_entries"`
}

type compressKindRow struct {
	Kind     string             `json:"kind"`
	Segments int                `json:"segments"`
	Levels   []compressLevelRow `json:"levels"`
}

type compressLevelRow struct {
	Level           int     `json:"level"`
	Pages           int     `json:"pages"`
	BytesPerPage    float64 `json:"bytes_per_page"`
	LeafFanout      float64 `json:"leaf_fanout"`
	FanoutRatio     float64 `json:"fanout_ratio_vs_level0"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	DiskAccPerQuery float64 `json:"disk_accesses_per_query"`
	// IdenticalResults is true when every window query returned exactly
	// the level-0 segment sets (always true for level 0 itself).
	IdenticalResults bool `json:"identical_results"`
}

// collectCompressionStats runs the level sweep for one kind. Each level
// gets a fresh bulk-built database (bulk packing fills leaves to
// capacity, so fanout reflects the format rather than the split
// policy), a result-fingerprint pass, and a timed pass.
func collectCompressionStats(kind segdb.Kind, m *segdb.MapData, rects []segdb.Rect) (compressKindRow, error) {
	row := compressKindRow{Kind: kind.String(), Segments: len(m.Segments)}
	var baseFanout float64
	var baseHash uint64
	for level := 0; level <= 2; level++ {
		db, err := segdb.Open(kind, segdb.WithPageCompression(level), segdb.WithPoolPages(compressPoolPages))
		if err != nil {
			return row, err
		}
		if _, err := db.AddBatch(m.Segments); err != nil {
			return row, fmt.Errorf("level %d: %w", level, err)
		}
		// Fingerprint pass: order-independent hash of every window's
		// result set. Doubles as the warm-up.
		hash, err := windowFingerprint(db, rects)
		if err != nil {
			return row, fmt.Errorf("level %d: %w", level, err)
		}
		sink := func(segdb.SegmentID, segdb.Segment) bool { return true }
		base := db.Metrics()
		start := time.Now()
		for _, r := range rects {
			if err := db.Window(r, sink); err != nil {
				return row, fmt.Errorf("level %d: %w", level, err)
			}
		}
		elapsed := time.Since(start)
		delta := db.Metrics().Sub(base)
		stats, err := db.PageFormatStats()
		if err != nil {
			return row, fmt.Errorf("level %d: %w", level, err)
		}
		n := float64(len(rects))
		lr := compressLevelRow{
			Level:           level,
			Pages:           stats.Pages,
			BytesPerPage:    stats.AvgBytesPerPage(),
			LeafFanout:      stats.AvgLeafFanout(),
			OpsPerSec:       n / elapsed.Seconds(),
			DiskAccPerQuery: float64(delta.DiskAccesses) / n,
		}
		if level == 0 {
			baseFanout, baseHash = lr.LeafFanout, hash
		}
		if baseFanout > 0 {
			lr.FanoutRatio = lr.LeafFanout / baseFanout
		}
		lr.IdenticalResults = hash == baseHash
		row.Levels = append(row.Levels, lr)
	}
	return row, nil
}

// windowFingerprint hashes every window's result IDs, sorted, so the
// fingerprint is independent of traversal order (compressed trees group
// the same entries into different nodes).
func windowFingerprint(db *segdb.DB, rects []segdb.Rect) (uint64, error) {
	h := fnv.New64a()
	var ids []segdb.SegmentID
	var buf [8]byte
	for _, r := range rects {
		ids = ids[:0]
		err := db.Window(r, func(id segdb.SegmentID, _ segdb.Segment) bool {
			ids = append(ids, id)
			return true
		})
		if err != nil {
			return 0, err
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			putU64(buf[:], uint64(id))
			h.Write(buf[:])
		}
		putU64(buf[:], ^uint64(len(ids)))
		h.Write(buf[:])
	}
	return h.Sum64(), nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// collectDecodeTimings times one full page decode per level for both
// page families on synthetic capacity-full 1 KB pages: the R-tree node
// decoded to its struct-of-arrays form (the query hot path), and the
// B+-tree leaf decoded into a pooled node.
func collectDecodeTimings() ([]decodeLevelRow, error) {
	const pageSize = 1024
	var rows []decodeLevelRow
	for level := 0; level <= 2; level++ {
		// R-tree node: capacity-full leaf of world-bounded rectangles.
		capN := rpage.CapacityLevel(pageSize, level)
		node := &rpage.Node{Leaf: true}
		for i := 0; i < capN; i++ {
			x := int32((i * 131) % (segdb.WorldSize - 64))
			y := int32((i * 197) % (segdb.WorldSize - 64))
			node.Entries = append(node.Entries, rpage.Entry{
				Rect: geom.RectOf(x, y, x+48, y+32),
				Ptr:  uint32(i + 1),
			})
		}
		page := make([]byte, pageSize)
		if err := rpage.WriteLevel(page, node, level); err != nil {
			return nil, err
		}
		rnode := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				soa, err := rpage.DecodeSoA(page)
				if err != nil {
					b.Fatal(err)
				}
				_ = soa
			}
		})

		// B+-tree leaf: harvest the fullest leaf page from a small
		// bulk-loaded tree at this level (bulk packing fills leaves).
		leafPage, leafEntries, err := fullestLeafPage(pageSize, level)
		if err != nil {
			return nil, err
		}
		leaf := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := btree.DecodePage(leafPage, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, decodeLevelRow{
			Level:        level,
			RNodeNs:      float64(rnode.NsPerOp()),
			RNodeEntries: capN,
			LeafNs:       float64(leaf.NsPerOp()),
			LeafEntries:  leafEntries,
		})
	}
	return rows, nil
}

// fullestLeafPage bulk-loads a small keys-only B+-tree at the given
// compression level and returns a copy of its fullest leaf page.
func fullestLeafPage(pageSize, level int) ([]byte, int, error) {
	disk := store.NewDisk(pageSize)
	pool := store.NewPool(disk, 64)
	const keys = 4096
	t, err := btree.BulkLoadWithOptions(pool, 0, level, keys, func(i int) (uint64, []byte) {
		// Morton-ish spacing: small, varied deltas like real q-edge keys.
		return uint64(i)*37 + uint64(i%11), nil
	})
	if err != nil {
		return nil, 0, err
	}
	if err := t.Pool().Flush(); err != nil {
		return nil, 0, err
	}
	var best []byte
	bestEntries := 0
	for id := 0; id < disk.PageCount(); id++ {
		data, err := disk.RawPage(store.PageID(id))
		if err != nil {
			return nil, 0, err
		}
		info, ok := btree.InspectPage(data, 0)
		if !ok || !info.Leaf {
			continue
		}
		if info.Entries > bestEntries {
			bestEntries = info.Entries
			best = append(best[:0], data...)
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("bulk-loaded btree at level %d has no leaf pages", level)
	}
	return best, bestEntries, nil
}

// collectCompression runs the whole section: decode timings plus the
// per-kind level sweep.
func collectCompression(m *segdb.MapData, rects []segdb.Rect) (*compressionSection, error) {
	sec := new(compressionSection)
	decode, err := collectDecodeTimings()
	if err != nil {
		return nil, err
	}
	sec.DecodeNs = decode
	for _, k := range allKinds() {
		row, err := collectCompressionStats(k, m, rects)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", k, err)
		}
		sec.Kinds = append(sec.Kinds, row)
	}
	return sec, nil
}
