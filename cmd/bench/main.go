// Command bench measures query throughput for every index kind and
// writes the results to BENCH_queries.json, giving the repository a
// perf trajectory: each PR can rerun `make bench` and diff against the
// committed artifact.
//
// Two experiments run:
//
//   - per-kind query stats: a fixed 512-window workload over a mid-size
//     (~12k segment) county, reporting ops/sec, disk accesses per query,
//     and the buffer pool hit ratio for each of the six index kinds;
//   - batch scaling: the 256-window WindowBatch over a ~50k-segment
//     county in a packed R*-tree, sequential versus GOMAXPROCS-parallel,
//     reporting the speedup.
//
// Usage:
//
//	bench [-o BENCH_queries.json] [-windows 512] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"segdb"
)

// kindResult is the per-index-kind row of the artifact.
type kindResult struct {
	Kind             string  `json:"kind"`
	Segments         int     `json:"segments"`
	Windows          int     `json:"windows"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	DiskAccPerQuery  float64 `json:"disk_accesses_per_query"`
	SegCompsPerQuery float64 `json:"seg_comps_per_query"`
	PoolHitRatio     float64 `json:"pool_hit_ratio"`
	// Per-query distributions from DB.Profile (log2-bucket estimates;
	// quantiles are bucket top edges, so factor-of-two resolution).
	LatencyP50Micros uint64 `json:"latency_p50_micros"`
	LatencyP99Micros uint64 `json:"latency_p99_micros"`
	DiskAccP50       uint64 `json:"disk_accesses_p50"`
	DiskAccP99       uint64 `json:"disk_accesses_p99"`
}

// batchResult records the WindowBatch scaling experiment.
type batchResult struct {
	Segments       int     `json:"segments"`
	Windows        int     `json:"windows"`
	Parallelism    int     `json:"parallelism"`
	SeqOpsPerSec   float64 `json:"sequential_ops_per_sec"`
	ParOpsPerSec   float64 `json:"parallel_ops_per_sec"`
	Speedup        float64 `json:"speedup"`
	PoolHitRatio   float64 `json:"pool_hit_ratio"`
	DiskAccPerQry  float64 `json:"disk_accesses_per_query"`
	GOMAXPROCSUsed int     `json:"gomaxprocs"`
	// Per-window latency distribution across all batch runs, from the
	// "windowbatch" entry of DB.Profile.
	LatencyP50Micros uint64 `json:"latency_p50_micros"`
	LatencyP99Micros uint64 `json:"latency_p99_micros"`
}

type artifact struct {
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	Kinds       []kindResult `json:"query_stats"`
	WindowBatch *batchResult `json:"window_batch"`
}

func main() {
	out := flag.String("o", "BENCH_queries.json", "output artifact path")
	windows := flag.Int("windows", 512, "windows per query workload")
	quick := flag.Bool("quick", false, "smaller maps and workloads (CI smoke)")
	flag.Parse()
	if err := run(*out, *windows, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func allKinds() []segdb.Kind {
	return []segdb.Kind{
		segdb.RStarTree, segdb.ClassicRTree, segdb.RPlusTree,
		segdb.KDBTree, segdb.PMRQuadtree, segdb.UniformGrid,
	}
}

// makeWindows generates n deterministic square query windows, each about
// frac of the world per side.
func makeWindows(n int, seed int64) []segdb.Rect {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]segdb.Rect, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Int31n(segdb.WorldSize - 512)
		y := rng.Int31n(segdb.WorldSize - 512)
		w := rng.Int31n(768) + 256
		x2, y2 := x+w, y+w
		if x2 >= segdb.WorldSize {
			x2 = segdb.WorldSize - 1
		}
		if y2 >= segdb.WorldSize {
			y2 = segdb.WorldSize - 1
		}
		rects = append(rects, segdb.RectOf(x, y, x2, y2))
	}
	return rects
}

// subsample keeps every len/n-th segment so -quick runs stay fast while
// preserving the map's spatial distribution.
func subsample(m *segdb.MapData, n int) *segdb.MapData {
	if len(m.Segments) <= n {
		return m
	}
	step := len(m.Segments) / n
	kept := make([]segdb.Segment, 0, n)
	for i := 0; i < len(m.Segments); i += step {
		kept = append(kept, m.Segments[i])
	}
	return &segdb.MapData{Name: m.Name, Class: m.Class, Segments: kept}
}

func run(out string, windows int, quick bool) error {
	county, err := segdb.GenerateCounty("Charles")
	if err != nil {
		return err
	}
	perKind := subsample(county, 12000)
	batchMap := county
	if quick {
		perKind = subsample(county, 2000)
		batchMap = subsample(county, 8000)
		if windows > 128 {
			windows = 128
		}
	}

	art := &artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}

	rects := makeWindows(windows, 1992)
	for _, k := range allKinds() {
		db, err := segdb.Open(k, nil)
		if err != nil {
			return err
		}
		if _, err := db.LoadPacked(perKind); err != nil {
			return fmt.Errorf("%v: %w", k, err)
		}
		// One warm pass so every kind starts from a comparably warm pool,
		// then the measured pass.
		sink := func(segdb.SegmentID, segdb.Segment) bool { return true }
		for _, r := range rects[:min(32, len(rects))] {
			if err := db.Window(r, sink); err != nil {
				return err
			}
		}
		base := db.Metrics()
		start := time.Now()
		for _, r := range rects {
			if err := db.Window(r, sink); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		delta := db.Metrics().Sub(base)
		n := float64(len(rects))
		row := kindResult{
			Kind:             k.String(),
			Segments:         db.Len(),
			Windows:          len(rects),
			OpsPerSec:        n / elapsed.Seconds(),
			DiskAccPerQuery:  float64(delta.DiskAccesses) / n,
			SegCompsPerQuery: float64(delta.SegComps) / n,
			PoolHitRatio:     delta.HitRatio(),
		}
		// The per-kind profile: every window query (warm pass included)
		// was folded into the "window" histograms.
		for _, q := range db.Profile().Queries {
			if q.Kind != "window" {
				continue
			}
			row.LatencyP50Micros = q.LatencyMicros.Quantile(0.5)
			row.LatencyP99Micros = q.LatencyMicros.Quantile(0.99)
			row.DiskAccP50 = q.DiskAccesses.Quantile(0.5)
			row.DiskAccP99 = q.DiskAccesses.Quantile(0.99)
		}
		art.Kinds = append(art.Kinds, row)
		fmt.Printf("%-14s %9.0f ops/s  %6.2f accesses/query  %5.1f%% hit ratio  p50/p99 %d/%dus\n",
			k, n/elapsed.Seconds(), float64(delta.DiskAccesses)/n, 100*delta.HitRatio(),
			row.LatencyP50Micros, row.LatencyP99Micros)
	}

	// WindowBatch scaling on the full county in a packed R*-tree with a
	// pool big enough to hold the working set.
	db, err := segdb.Open(segdb.RStarTree, &segdb.Options{PoolPages: 4096})
	if err != nil {
		return err
	}
	if _, err := db.LoadPacked(batchMap); err != nil {
		return err
	}
	batchRects := makeWindows(256, 20260805)
	if quick {
		batchRects = batchRects[:64]
	}
	bsink := func(int, segdb.SegmentID, segdb.Segment) bool { return true }
	// Warm pass.
	if err := db.WindowBatch(batchRects, 1, bsink); err != nil {
		return err
	}
	base := db.Metrics()
	seqStart := time.Now()
	if err := db.WindowBatch(batchRects, 1, bsink); err != nil {
		return err
	}
	seqElapsed := time.Since(seqStart)
	delta := db.Metrics().Sub(base)
	workers := runtime.GOMAXPROCS(0)
	parStart := time.Now()
	if err := db.WindowBatch(batchRects, workers, bsink); err != nil {
		return err
	}
	parElapsed := time.Since(parStart)
	n := float64(len(batchRects))
	art.WindowBatch = &batchResult{
		Segments:       db.Len(),
		Windows:        len(batchRects),
		Parallelism:    workers,
		SeqOpsPerSec:   n / seqElapsed.Seconds(),
		ParOpsPerSec:   n / parElapsed.Seconds(),
		Speedup:        seqElapsed.Seconds() / parElapsed.Seconds(),
		PoolHitRatio:   delta.HitRatio(),
		DiskAccPerQry:  float64(delta.DiskAccesses) / n,
		GOMAXPROCSUsed: workers,
	}
	for _, q := range db.Profile().Queries {
		if q.Kind == "windowbatch" {
			art.WindowBatch.LatencyP50Micros = q.LatencyMicros.Quantile(0.5)
			art.WindowBatch.LatencyP99Micros = q.LatencyMicros.Quantile(0.99)
		}
	}
	fmt.Printf("WindowBatch    %9.0f ops/s seq, %9.0f ops/s x%d (%.2fx speedup)\n",
		art.WindowBatch.SeqOpsPerSec, art.WindowBatch.ParOpsPerSec, workers, art.WindowBatch.Speedup)

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
