// Command bench measures query throughput for every index kind and
// writes the results to BENCH_queries.json, giving the repository a
// perf trajectory: each PR can rerun `make bench` and diff against the
// committed artifact.
//
// Seven experiments run:
//
//   - per-kind query stats: a fixed 512-window workload over a mid-size
//     (~12k segment) county, reporting ops/sec, disk accesses per query,
//     and the buffer pool hit ratio for each of the six index kinds. Each
//     database is built with one-at-a-time insertion (db.Load) so the
//     rows reflect each kind's own construction algorithm — bulk packing
//     would give the R-tree and R*-tree the same STR tree and therefore
//     byte-identical rows;
//   - kernels: the scalar-reference, int32-lane, and SWAR-packed
//     IntersectMask forms timed over one node's entries with a cycling
//     query window, plus the decode-once cache hit/decode counters
//     observed on the R*-tree query workload, as the "kernels" section;
//   - build comparison: the full ~50k-segment county constructed twice
//     per kind — one-at-a-time insertion versus the bulk pipeline
//     (AddBatch), both ingesting the same seeded-shuffled segment order
//     to model TIGER/Line record order rather than the generator's
//     spatial sweep — reporting build disk accesses, node computations,
//     wall clock, and the bulk speedup, as the artifact's "build"
//     section;
//   - batch scaling: the 256-window WindowBatch over a ~50k-segment
//     county in a packed R*-tree, sequential versus GOMAXPROCS-parallel,
//     reporting the speedup;
//   - goroutine sweeps: WindowBatch and the Overlay spatial join timed at
//     1, 2, 4, 8, and 16 workers, emitted as the artifact's "scaling"
//     section. The recorded gomaxprocs says how many cores the numbers
//     were taken on — on a single-core host every speedup sits near 1.0x;
//   - serving tier: the full county behind a 4-shard router and the HTTP
//     server, driven over loopback by the deterministic zipfian pan/zoom
//     load generator from 4 client goroutines, reporting p50/p95/p99
//     request latency, throughput, the result-cache hit ratio, and the
//     per-shard disk-access balance, as the artifact's "serve" section;
//   - staged ingest: a sustained single-segment write storm landed
//     against concurrent window readers, once in staged-MVCC mode (reads
//     pin snapshots, no reader lock) and once in the legacy
//     exclusive-lock mode, reporting writes/sec and the reader latency
//     tail side by side as the artifact's "ingest" section.
//
// Usage:
//
//	bench [-o BENCH_queries.json] [-windows 512] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"segdb"
)

type artifact struct {
	GeneratedAt string               `json:"generated_at"`
	GoVersion   string               `json:"go_version"`
	Kinds       []kindResult         `json:"query_stats"`
	Kernels     *kernelsResult       `json:"kernels"`
	Compression *compressionSection  `json:"compression"`
	Build       []buildKindResult    `json:"build"`
	WindowBatch *batchResult         `json:"window_batch"`
	Scaling     []*scalingExperiment `json:"scaling"`
	Serve       *serveResult         `json:"serve"`
	Ingest      *ingestResult        `json:"ingest"`
}

// sweepWorkers is the goroutine-count sweep of the scaling experiments.
var sweepWorkers = []int{1, 2, 4, 8, 16}

func main() {
	out := flag.String("o", "BENCH_queries.json", "output artifact path")
	windows := flag.Int("windows", 512, "windows per query workload")
	quick := flag.Bool("quick", false, "smaller maps and workloads (CI smoke)")
	flag.Parse()
	if err := run(*out, *windows, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func allKinds() []segdb.Kind {
	return []segdb.Kind{
		segdb.RStarTree, segdb.ClassicRTree, segdb.RPlusTree,
		segdb.KDBTree, segdb.PMRQuadtree, segdb.UniformGrid,
	}
}

// makeWindows generates n deterministic square query windows, each about
// frac of the world per side.
func makeWindows(n int, seed int64) []segdb.Rect {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]segdb.Rect, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Int31n(segdb.WorldSize - 512)
		y := rng.Int31n(segdb.WorldSize - 512)
		w := rng.Int31n(768) + 256
		x2, y2 := x+w, y+w
		if x2 >= segdb.WorldSize {
			x2 = segdb.WorldSize - 1
		}
		if y2 >= segdb.WorldSize {
			y2 = segdb.WorldSize - 1
		}
		rects = append(rects, segdb.RectOf(x, y, x2, y2))
	}
	return rects
}

// subsample keeps every len/n-th segment so -quick runs stay fast while
// preserving the map's spatial distribution.
func subsample(m *segdb.MapData, n int) *segdb.MapData {
	if len(m.Segments) <= n {
		return m
	}
	step := len(m.Segments) / n
	kept := make([]segdb.Segment, 0, n)
	for i := 0; i < len(m.Segments); i += step {
		kept = append(kept, m.Segments[i])
	}
	return &segdb.MapData{Name: m.Name, Class: m.Class, Segments: kept}
}

func run(out string, windows int, quick bool) error {
	county, err := segdb.GenerateCounty("Charles")
	if err != nil {
		return err
	}
	overlayCounty, err := segdb.GenerateCounty("Baltimore")
	if err != nil {
		return err
	}
	perKind := subsample(county, 12000)
	batchMap := county
	overlaySize := 6000
	if quick {
		perKind = subsample(county, 2000)
		batchMap = subsample(county, 8000)
		overlaySize = 1500
		if windows > 128 {
			windows = 128
		}
	}

	art := &artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	gomaxprocs := runtime.GOMAXPROCS(0)

	rects := makeWindows(windows, 1992)
	var decodeHits, decodeMisses uint64
	for _, k := range allKinds() {
		db, err := segdb.Open(k)
		if err != nil {
			return err
		}
		// Incremental insertion, not LoadPacked: STR bulk packing ignores
		// the insertion algorithm, which made the R-tree and R*-tree rows
		// byte-identical (they measured the same tree).
		if _, err := db.Load(perKind); err != nil {
			return fmt.Errorf("%v: %w", k, err)
		}
		row, err := collectKindStats(db, rects, min(32, len(rects)))
		if err != nil {
			return fmt.Errorf("%v: %w", k, err)
		}
		row.Kind = k.String()
		art.Kinds = append(art.Kinds, row)
		if k == segdb.RStarTree {
			// Decode-once cache counters for the "kernels" section, read
			// after the query workload so they cover the build plus the
			// warm and timed window passes.
			decodeHits, decodeMisses = db.DecodeCacheStats()
		}
		fmt.Printf("%-14s %9.0f ops/s  %6.2f accesses/query  %5.1f%% hit ratio  p50/p99 %d/%dus\n",
			k, row.OpsPerSec, row.DiskAccPerQuery, 100*row.PoolHitRatio,
			row.LatencyP50Micros, row.LatencyP99Micros)
	}

	// Kernel microbenchmarks: scalar reference vs lane vs packed compare
	// kernels over one node, plus the decode-cache counters above.
	art.Kernels = new(kernelsResult)
	*art.Kernels = collectKernelStats(decodeHits, decodeMisses)
	fmt.Printf("kernels        scalar %.0fns  lanes %.0fns  packed %.0fns per node (%.2fx), decode skip %.1f%%\n",
		art.Kernels.ScalarNsPerNode, art.Kernels.LaneNsPerNode, art.Kernels.PackedNsPerNode,
		art.Kernels.PackedSpeedup, 100*art.Kernels.DecodeSkipRatio)

	// Compression sweep: every kind bulk-built at page-compression
	// levels 0-2 over a small pool, plus per-format decode timings.
	art.Compression, err = collectCompression(perKind, rects)
	if err != nil {
		return fmt.Errorf("compression: %w", err)
	}
	for _, kr := range art.Compression.Kinds {
		l0, l1 := kr.Levels[0], kr.Levels[1]
		fmt.Printf("compress:%-8s %5.1f -> %5.1f fanout (%.2fx), %6.2f -> %6.2f accesses/query, identical=%v\n",
			kr.Kind, l0.LeafFanout, l1.LeafFanout, l1.FanoutRatio,
			l0.DiskAccPerQuery, l1.DiskAccPerQuery, l1.IdenticalResults)
	}

	// Build comparison: the ~50k-segment county constructed by
	// one-at-a-time insertion versus the bulk pipeline, per kind.
	buildMap := county
	if quick {
		buildMap = subsample(county, 4000)
	}
	for _, k := range allKinds() {
		row, err := collectBuildStats(k, buildMap)
		if err != nil {
			return fmt.Errorf("build %v: %w", k, err)
		}
		art.Build = append(art.Build, row)
		fmt.Printf("build:%-8s %9d accesses incremental, %7d bulk (%.1fx fewer), %.1fx faster\n",
			k, row.IncrementalDiskAccesses, row.BulkDiskAccesses, row.DiskAccessRatio, row.Speedup)
	}

	// WindowBatch scaling on the full county in a packed R*-tree with a
	// pool big enough to hold the working set.
	db, err := segdb.Open(segdb.RStarTree, segdb.WithPoolPages(4096))
	if err != nil {
		return err
	}
	if _, err := db.LoadPacked(batchMap); err != nil {
		return err
	}
	batchRects := makeWindows(256, 20260805)
	if quick {
		batchRects = batchRects[:64]
	}
	bsink := func(int, segdb.SegmentID, segdb.Segment) bool { return true }
	// Warm pass.
	if err := db.WindowBatch(batchRects, 1, bsink); err != nil {
		return err
	}
	base := db.Metrics()
	seqStart := time.Now()
	if err := db.WindowBatch(batchRects, 1, bsink); err != nil {
		return err
	}
	seqElapsed := time.Since(seqStart)
	delta := db.Metrics().Sub(base)
	parStart := time.Now()
	if err := db.WindowBatch(batchRects, gomaxprocs, bsink); err != nil {
		return err
	}
	parElapsed := time.Since(parStart)
	n := float64(len(batchRects))
	art.WindowBatch = &batchResult{
		Segments:       db.Len(),
		Windows:        len(batchRects),
		Parallelism:    gomaxprocs,
		SeqOpsPerSec:   n / seqElapsed.Seconds(),
		ParOpsPerSec:   n / parElapsed.Seconds(),
		Speedup:        seqElapsed.Seconds() / parElapsed.Seconds(),
		PoolHitRatio:   delta.HitRatio(),
		DiskAccPerQry:  float64(delta.DiskAccesses) / n,
		GOMAXPROCSUsed: gomaxprocs,
	}
	for _, q := range db.Profile().Queries {
		if q.Kind == "windowbatch" {
			art.WindowBatch.LatencyP50Micros = q.LatencyMicros.Quantile(0.5)
			art.WindowBatch.LatencyP99Micros = q.LatencyMicros.Quantile(0.99)
		}
	}
	fmt.Printf("WindowBatch    %9.0f ops/s seq, %9.0f ops/s x%d (%.2fx speedup)\n",
		art.WindowBatch.SeqOpsPerSec, art.WindowBatch.ParOpsPerSec, gomaxprocs, art.WindowBatch.Speedup)

	// Goroutine sweeps: the same batch workload at fixed worker counts.
	batchSweep, err := sweepWindowBatch(db, batchRects, sweepWorkers, gomaxprocs)
	if err != nil {
		return err
	}
	art.Scaling = append(art.Scaling, batchSweep)
	printSweep(batchSweep)

	// Overlay sweep: a spatial join between two different counties, both
	// in packed R*-trees sized so the working sets stay pool-resident.
	ovA, err := segdb.Open(segdb.RStarTree, segdb.WithPoolPages(4096))
	if err != nil {
		return err
	}
	if _, err := ovA.LoadPacked(subsample(county, overlaySize)); err != nil {
		return err
	}
	ovB, err := segdb.Open(segdb.RStarTree, segdb.WithPoolPages(4096))
	if err != nil {
		return err
	}
	if _, err := ovB.LoadPacked(subsample(overlayCounty, overlaySize)); err != nil {
		return err
	}
	overlaySweep, err := sweepOverlay(ovA, ovB, sweepWorkers, gomaxprocs)
	if err != nil {
		return err
	}
	art.Scaling = append(art.Scaling, overlaySweep)
	printSweep(overlaySweep)

	// Serving tier: the sharded router behind the HTTP server, driven by
	// the zipfian pan/zoom load generator over real loopback HTTP.
	serveMap, serveReqs := county, 3000
	if quick {
		serveMap, serveReqs = subsample(county, 8000), 400
	}
	art.Serve, err = collectServeStats(serveMap, 4, serveReqs, 4)
	if err != nil {
		return err
	}
	fmt.Printf("serve          %9.0f ops/s x%d, p50/p95/p99 %d/%d/%dus, %.1f%% cache hits (%d win, %d nn, %d inc)\n",
		art.Serve.OpsPerSec, art.Serve.Concurrency,
		art.Serve.LatencyP50Micros, art.Serve.LatencyP95Micros, art.Serve.LatencyP99Micros,
		100*art.Serve.CacheHitRatio, art.Serve.WindowOps, art.Serve.NearestOps, art.Serve.IncidentOps)

	// Staged ingest: the same write storm landed against concurrent
	// readers in staged-MVCC mode and in legacy exclusive-lock mode.
	ingestMap, ingestWrites := perKind, 4000
	if quick {
		ingestWrites = 600
	}
	art.Ingest, err = collectIngestStats(ingestMap, ingestWrites, 4)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	fmt.Printf("ingest         %9.0f writes/s staged, %9.0f locked (%.2fx), reader p99 %d vs %dus, %d compactions, %d locked reads\n",
		art.Ingest.Staged.WritesPerSec, art.Ingest.Locked.WritesPerSec, art.Ingest.WriteSpeedup,
		art.Ingest.Staged.ReaderP99Micros, art.Ingest.Locked.ReaderP99Micros,
		art.Ingest.StagedCompactions, art.Ingest.StagedLockedReads)

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

func printSweep(exp *scalingExperiment) {
	fmt.Printf("%-14s", "scale:"+exp.Experiment)
	for _, pt := range exp.Points {
		fmt.Printf("  x%d %.0f ops/s (%.2fx)", pt.Workers, pt.OpsPerSec, pt.Speedup)
	}
	fmt.Printf("  [gomaxprocs %d]\n", exp.GOMAXPROCS)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
