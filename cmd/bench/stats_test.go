package main

import (
	"os"
	"testing"

	"segdb"
)

// benchFixture builds a small incrementally-loaded database and a
// deterministic window workload, mirroring the per-kind experiment at
// test size.
func benchFixture(t *testing.T, kind segdb.Kind) (*segdb.DB, []segdb.Rect) {
	t.Helper()
	county, err := segdb.GenerateCounty("Charles")
	if err != nil {
		t.Fatal(err)
	}
	db, err := segdb.Open(kind, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(subsample(county, 1000)); err != nil {
		t.Fatal(err)
	}
	return db, makeWindows(64, 7)
}

// TestCollectKindStatsSnapshotsCounters guards the delta logic: the row
// must reflect only the timed pass, so measuring the same database twice
// yields the same per-query workload numbers instead of accumulating the
// earlier passes into the later row.
func TestCollectKindStatsSnapshotsCounters(t *testing.T) {
	db, rects := benchFixture(t, segdb.RStarTree)
	r1, err := collectKindStats(db, rects, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := collectKindStats(db, rects, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Windows != len(rects) || r1.OpsPerSec <= 0 {
		t.Fatalf("implausible row: %+v", r1)
	}
	if r1.SegCompsPerQuery <= 0 || r1.DiskAccPerQuery <= 0 {
		t.Fatalf("row reports no work done: %+v", r1)
	}
	// Segment comparisons depend only on the tree and the windows, never
	// on buffer pool state, so a correct delta is exactly repeatable. A
	// cumulative-counters bug would at least double the second row.
	if r2.SegCompsPerQuery != r1.SegCompsPerQuery {
		t.Errorf("seg comps per query drifted across measurements: %v then %v (counters not snapshotted?)",
			r1.SegCompsPerQuery, r2.SegCompsPerQuery)
	}
	// Disk accesses do depend on pool state, so allow warm-pool wiggle —
	// but nowhere near the 2x a leaked warm pass or prior run would add.
	if r2.DiskAccPerQuery > 1.5*r1.DiskAccPerQuery {
		t.Errorf("disk accesses per query grew from %v to %v: earlier passes leaked into the row",
			r1.DiskAccPerQuery, r2.DiskAccPerQuery)
	}
}

// TestCollectKindStatsDistinguishesKinds is the regression test for the
// byte-identical R-tree and R*-tree artifact rows: built by STR bulk
// packing the two kinds produced the very same tree. With incremental
// insertion their construction algorithms differ (R* forced reinsertion
// versus Guttman's quadratic split), so the same workload must observe
// different trees.
func TestCollectKindStatsDistinguishesKinds(t *testing.T) {
	star, rects := benchFixture(t, segdb.RStarTree)
	classic, _ := benchFixture(t, segdb.ClassicRTree)
	rs, err := collectKindStats(star, rects, 8)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := collectKindStats(classic, rects, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DiskAccPerQuery == rc.DiskAccPerQuery && rs.SegCompsPerQuery == rc.SegCompsPerQuery {
		t.Errorf("R*-tree and R-tree rows are identical (%v accesses, %v comps per query): the benchmark is measuring the same tree for both kinds",
			rs.DiskAccPerQuery, rs.SegCompsPerQuery)
	}
}

// TestCollectBuildStats verifies the build row measures both builds and
// that the bulk path does radically fewer index disk accesses than
// incremental insertion — the acceptance bar for the bulk pipeline is 5x
// on the full county; even at test size the gap is wide.
func TestCollectBuildStats(t *testing.T) {
	county, err := segdb.GenerateCounty("Charles")
	if err != nil {
		t.Fatal(err)
	}
	m := subsample(county, 2000)
	for _, kind := range []segdb.Kind{segdb.PMRQuadtree, segdb.RPlusTree, segdb.UniformGrid} {
		row, err := collectBuildStats(kind, m)
		if err != nil {
			t.Fatal(err)
		}
		if row.Kind != kind.String() || row.Segments != len(m.Segments) {
			t.Fatalf("row facts: %+v", row)
		}
		if row.IncrementalDiskAccesses == 0 || row.BulkDiskAccesses == 0 {
			t.Fatalf("%v: a build reported zero disk accesses: %+v", kind, row)
		}
		if row.DiskAccessRatio < 5 {
			t.Errorf("%v: bulk build saves only %.1fx disk accesses (incremental %d, bulk %d), want >= 5x",
				kind, row.DiskAccessRatio, row.IncrementalDiskAccesses, row.BulkDiskAccesses)
		}
	}
}

// TestSweepWindowBatch checks the sweep's shape: one point per worker
// count, the first point pinned to 1.0x, sane throughput everywhere.
func TestSweepWindowBatch(t *testing.T) {
	db, rects := benchFixture(t, segdb.RStarTree)
	exp, err := sweepWindowBatch(db, rects, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Experiment != "window_batch" || len(exp.Points) != 3 {
		t.Fatalf("unexpected sweep shape: %+v", exp)
	}
	if exp.Points[0].Workers != 1 || exp.Points[0].Speedup != 1.0 {
		t.Errorf("first point must be the workers=1 baseline: %+v", exp.Points[0])
	}
	for _, pt := range exp.Points {
		if pt.OpsPerSec <= 0 {
			t.Errorf("non-positive throughput at %d workers", pt.Workers)
		}
	}
}

// TestSweepOverlay does the same for the join sweep.
func TestSweepOverlay(t *testing.T) {
	a, _ := benchFixture(t, segdb.RStarTree)
	b, _ := benchFixture(t, segdb.ClassicRTree)
	exp, err := sweepOverlay(a, b, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Experiment != "overlay" || len(exp.Points) != 2 {
		t.Fatalf("unexpected sweep shape: %+v", exp)
	}
	if exp.Segments != a.Len()+b.Len() {
		t.Errorf("sweep records %d segments, want %d", exp.Segments, a.Len()+b.Len())
	}
	if exp.Points[0].Speedup != 1.0 {
		t.Errorf("first point must be the workers=1 baseline: %+v", exp.Points[0])
	}
}

// TestCompressionGate is the enforced page-compression smoke (run by
// `make bench-compress`; env-gated so plain `go test` stays fast and
// free of perf assertions). For every index kind, compressed pages must
// never cost more disk accesses per query than classic pages, must not
// shrink the effective leaf fanout, and must answer every window
// identically — if compression stops paying for itself, this trips
// before the committed artifact does.
func TestCompressionGate(t *testing.T) {
	if os.Getenv("SEGDB_BENCH_COMPRESS") == "" {
		t.Skip("set SEGDB_BENCH_COMPRESS=1 to run the compression gate (make bench-compress)")
	}
	county, err := segdb.GenerateCounty("Charles")
	if err != nil {
		t.Fatal(err)
	}
	m := subsample(county, 3000)
	rects := makeWindows(96, 1992)
	for _, kind := range allKinds() {
		row, err := collectCompressionStats(kind, m, rects)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(row.Levels) != 3 {
			t.Fatalf("%v: got %d levels, want 3", kind, len(row.Levels))
		}
		l0, l1 := row.Levels[0], row.Levels[1]
		if l1.DiskAccPerQuery > l0.DiskAccPerQuery {
			t.Errorf("%v: level-1 pages cost %.2f disk accesses/query, level-0 %.2f — compression made queries more expensive",
				kind, l1.DiskAccPerQuery, l0.DiskAccPerQuery)
		}
		if l1.LeafFanout < l0.LeafFanout {
			t.Errorf("%v: level-1 leaf fanout %.1f below level-0 %.1f", kind, l1.LeafFanout, l0.LeafFanout)
		}
		for _, lr := range row.Levels {
			if !lr.IdenticalResults {
				t.Errorf("%v: level %d returned different query results than level 0", kind, lr.Level)
			}
		}
		t.Logf("%-14v fanout %5.1f -> %5.1f (%.2fx), accesses/query %5.2f -> %5.2f",
			kind, l0.LeafFanout, l1.LeafFanout, l1.FanoutRatio, l0.DiskAccPerQuery, l1.DiskAccPerQuery)
	}
}
