// Stats collection helpers for the bench command, split from main so the
// measurement logic is unit-testable: the per-kind row collector snapshots
// and deltas the database counters (a regression here silently corrupts
// every number in the artifact), and the goroutine sweeps time the same
// batch workload at increasing parallelism.
package main

import (
	"time"

	"segdb"
)

// kindResult is the per-index-kind row of the artifact.
type kindResult struct {
	Kind             string  `json:"kind"`
	Segments         int     `json:"segments"`
	Windows          int     `json:"windows"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	DiskAccPerQuery  float64 `json:"disk_accesses_per_query"`
	SegCompsPerQuery float64 `json:"seg_comps_per_query"`
	PoolHitRatio     float64 `json:"pool_hit_ratio"`
	// Per-query distributions from DB.Profile (log2-bucket estimates;
	// quantiles are bucket top edges, so factor-of-two resolution).
	LatencyP50Micros uint64 `json:"latency_p50_micros"`
	LatencyP99Micros uint64 `json:"latency_p99_micros"`
	DiskAccP50       uint64 `json:"disk_accesses_p50"`
	DiskAccP99       uint64 `json:"disk_accesses_p99"`
}

// batchResult records the WindowBatch sequential-versus-parallel run.
type batchResult struct {
	Segments       int     `json:"segments"`
	Windows        int     `json:"windows"`
	Parallelism    int     `json:"parallelism"`
	SeqOpsPerSec   float64 `json:"sequential_ops_per_sec"`
	ParOpsPerSec   float64 `json:"parallel_ops_per_sec"`
	Speedup        float64 `json:"speedup"`
	PoolHitRatio   float64 `json:"pool_hit_ratio"`
	DiskAccPerQry  float64 `json:"disk_accesses_per_query"`
	GOMAXPROCSUsed int     `json:"gomaxprocs"`
	// Per-window latency distribution across all batch runs, from the
	// "windowbatch" entry of DB.Profile.
	LatencyP50Micros uint64 `json:"latency_p50_micros"`
	LatencyP99Micros uint64 `json:"latency_p99_micros"`
}

// scalingPoint is one worker count of a goroutine sweep. Speedup is
// relative to the sweep's first point (workers=1).
type scalingPoint struct {
	Workers   int     `json:"workers"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup"`
}

// scalingExperiment is a goroutine-count sweep over one parallel
// operation. GOMAXPROCS records how many cores the host actually had:
// speedups flatten once workers exceed it, and on a single-core runner
// every point is expected near 1.0x.
type scalingExperiment struct {
	Experiment string         `json:"experiment"`
	Segments   int            `json:"segments"`
	Windows    int            `json:"windows,omitempty"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Points     []scalingPoint `json:"points"`
}

// collectKindStats measures the window workload against one database: a
// warm pass over the first warm windows so every kind starts from a
// comparably warm pool, then a timed pass over all of rects whose counter
// deltas become the row. Counters are snapshotted immediately before the
// timed pass and deltaed after it, so neither the warm pass nor any
// earlier measurement on the same database leaks into the row. The Kind
// field is left for the caller.
func collectKindStats(db *segdb.DB, rects []segdb.Rect, warm int) (kindResult, error) {
	sink := func(segdb.SegmentID, segdb.Segment) bool { return true }
	if warm > len(rects) {
		warm = len(rects)
	}
	for _, r := range rects[:warm] {
		if err := db.Window(r, sink); err != nil {
			return kindResult{}, err
		}
	}
	base := db.Metrics()
	start := time.Now()
	for _, r := range rects {
		if err := db.Window(r, sink); err != nil {
			return kindResult{}, err
		}
	}
	elapsed := time.Since(start)
	delta := db.Metrics().Sub(base)
	n := float64(len(rects))
	row := kindResult{
		Segments:         db.Len(),
		Windows:          len(rects),
		OpsPerSec:        n / elapsed.Seconds(),
		DiskAccPerQuery:  float64(delta.DiskAccesses) / n,
		SegCompsPerQuery: float64(delta.SegComps) / n,
		PoolHitRatio:     delta.HitRatio(),
	}
	// The per-kind profile: every window query (warm pass included) was
	// folded into the "window" histograms.
	for _, q := range db.Profile().Queries {
		if q.Kind != "window" {
			continue
		}
		row.LatencyP50Micros = q.LatencyMicros.Quantile(0.5)
		row.LatencyP99Micros = q.LatencyMicros.Quantile(0.99)
		row.DiskAccP50 = q.DiskAccesses.Quantile(0.5)
		row.DiskAccP99 = q.DiskAccesses.Quantile(0.99)
	}
	return row, nil
}

// sweepWindowBatch times the same WindowBatch workload once per worker
// count. One warm batch runs first so the pool state is comparable across
// points; speedups are relative to the first worker count.
func sweepWindowBatch(db *segdb.DB, rects []segdb.Rect, workers []int, gomaxprocs int) (*scalingExperiment, error) {
	sink := func(int, segdb.SegmentID, segdb.Segment) bool { return true }
	if err := db.WindowBatch(rects, 1, sink); err != nil {
		return nil, err
	}
	exp := &scalingExperiment{
		Experiment: "window_batch",
		Segments:   db.Len(),
		Windows:    len(rects),
		GOMAXPROCS: gomaxprocs,
	}
	var base float64
	for _, w := range workers {
		start := time.Now()
		if err := db.WindowBatch(rects, w, sink); err != nil {
			return nil, err
		}
		ops := float64(len(rects)) / time.Since(start).Seconds()
		if len(exp.Points) == 0 {
			base = ops
		}
		exp.Points = append(exp.Points, scalingPoint{Workers: w, OpsPerSec: ops, Speedup: ops / base})
	}
	return exp, nil
}

// sweepOverlay times a full spatial join of a against b once per worker
// count. Ops/sec counts outer-relation probes (each of a's segments costs
// one index probe into b), the unit the join fans across its worker pool.
func sweepOverlay(a, b *segdb.DB, workers []int, gomaxprocs int) (*scalingExperiment, error) {
	sink := func(segdb.SegmentID, segdb.SegmentID, segdb.Segment, segdb.Segment) bool { return true }
	if err := a.OverlayParallel(b, 1, sink); err != nil {
		return nil, err
	}
	exp := &scalingExperiment{
		Experiment: "overlay",
		Segments:   a.Len() + b.Len(),
		GOMAXPROCS: gomaxprocs,
	}
	var base float64
	for _, w := range workers {
		start := time.Now()
		if err := a.OverlayParallel(b, w, sink); err != nil {
			return nil, err
		}
		ops := float64(a.Len()) / time.Since(start).Seconds()
		if len(exp.Points) == 0 {
			base = ops
		}
		exp.Points = append(exp.Points, scalingPoint{Workers: w, OpsPerSec: ops, Speedup: ops / base})
	}
	return exp, nil
}
