// Stats collection helpers for the bench command, split from main so the
// measurement logic is unit-testable: the per-kind row collector snapshots
// and deltas the database counters (a regression here silently corrupts
// every number in the artifact), and the goroutine sweeps time the same
// batch workload at increasing parallelism.
package main

import (
	"math/rand"
	"time"

	"segdb"
)

// kindResult is the per-index-kind row of the artifact.
type kindResult struct {
	Kind             string  `json:"kind"`
	Segments         int     `json:"segments"`
	Windows          int     `json:"windows"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	DiskAccPerQuery  float64 `json:"disk_accesses_per_query"`
	SegCompsPerQuery float64 `json:"seg_comps_per_query"`
	PoolHitRatio     float64 `json:"pool_hit_ratio"`
	// Per-query distributions from DB.Profile (log2-bucket estimates;
	// quantiles are bucket top edges, so factor-of-two resolution).
	LatencyP50Micros uint64 `json:"latency_p50_micros"`
	LatencyP99Micros uint64 `json:"latency_p99_micros"`
	DiskAccP50       uint64 `json:"disk_accesses_p50"`
	DiskAccP99       uint64 `json:"disk_accesses_p99"`
}

// buildKindResult is one row of the artifact's "build" section: the same
// map built twice into the same index kind, by one-at-a-time insertion
// (the paper's Table 1 procedure) and through the bulk pipeline
// (AddBatch). Disk accesses and node computations count only the index's
// own pages and bounding-box/bucket work, exactly as the query rows do.
type buildKindResult struct {
	Kind                    string  `json:"kind"`
	Segments                int     `json:"segments"`
	IncrementalDiskAccesses uint64  `json:"incremental_disk_accesses"`
	BulkDiskAccesses        uint64  `json:"bulk_disk_accesses"`
	DiskAccessRatio         float64 `json:"disk_access_ratio"`
	IncrementalNodeComps    uint64  `json:"incremental_node_comps"`
	BulkNodeComps           uint64  `json:"bulk_node_comps"`
	IncrementalWallMicros   int64   `json:"incremental_wall_micros"`
	BulkWallMicros          int64   `json:"bulk_wall_micros"`
	Speedup                 float64 `json:"speedup"`
}

// collectBuildStats builds m twice into kind — incrementally, then
// through the bulk pipeline — and reports the costs side by side. Each
// build gets a fresh database, so the index pool counters read as the
// build's own total.
//
// Both builds ingest the segments in the same fixed, seeded shuffled
// order. The synthetic generator emits segments in a spatially coherent
// sweep, which hands one-at-a-time insertion near-perfect buffer pool
// locality — an artifact of the generator, not of the data: real
// TIGER/Line files arrive in record (TLID) order, which is uncorrelated
// with geometry. Incremental build cost is sensitive to ingest order;
// the bulk pipeline sorts internally and is not — that asymmetry is
// precisely what this experiment measures, so the comparison models
// file order rather than the generator's sweep.
func collectBuildStats(kind segdb.Kind, m *segdb.MapData) (buildKindResult, error) {
	segs := make([]segdb.Segment, len(m.Segments))
	copy(segs, m.Segments)
	rng := rand.New(rand.NewSource(1992))
	rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
	sm := &segdb.MapData{Name: m.Name, Class: m.Class, Segments: segs}

	inc, err := segdb.Open(kind)
	if err != nil {
		return buildKindResult{}, err
	}
	start := time.Now()
	if _, err := inc.Load(sm); err != nil {
		return buildKindResult{}, err
	}
	incWall := time.Since(start)

	blk, err := segdb.Open(kind)
	if err != nil {
		return buildKindResult{}, err
	}
	start = time.Now()
	if _, err := blk.AddBatch(sm.Segments); err != nil {
		return buildKindResult{}, err
	}
	blkWall := time.Since(start)

	row := buildKindResult{
		Kind:                    kind.String(),
		Segments:                len(m.Segments),
		IncrementalDiskAccesses: inc.Index().DiskStats().Accesses(),
		BulkDiskAccesses:        blk.Index().DiskStats().Accesses(),
		IncrementalNodeComps:    inc.Index().NodeComps(),
		BulkNodeComps:           blk.Index().NodeComps(),
		IncrementalWallMicros:   incWall.Microseconds(),
		BulkWallMicros:          blkWall.Microseconds(),
	}
	if row.BulkDiskAccesses > 0 {
		row.DiskAccessRatio = float64(row.IncrementalDiskAccesses) / float64(row.BulkDiskAccesses)
	}
	if blkWall > 0 {
		row.Speedup = incWall.Seconds() / blkWall.Seconds()
	}
	return row, nil
}

// batchResult records the WindowBatch sequential-versus-parallel run.
type batchResult struct {
	Segments       int     `json:"segments"`
	Windows        int     `json:"windows"`
	Parallelism    int     `json:"parallelism"`
	SeqOpsPerSec   float64 `json:"sequential_ops_per_sec"`
	ParOpsPerSec   float64 `json:"parallel_ops_per_sec"`
	Speedup        float64 `json:"speedup"`
	PoolHitRatio   float64 `json:"pool_hit_ratio"`
	DiskAccPerQry  float64 `json:"disk_accesses_per_query"`
	GOMAXPROCSUsed int     `json:"gomaxprocs"`
	// Per-window latency distribution across all batch runs, from the
	// "windowbatch" entry of DB.Profile.
	LatencyP50Micros uint64 `json:"latency_p50_micros"`
	LatencyP99Micros uint64 `json:"latency_p99_micros"`
}

// scalingPoint is one worker count of a goroutine sweep. Speedup is
// relative to the sweep's first point (workers=1).
type scalingPoint struct {
	Workers   int     `json:"workers"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup"`
}

// scalingExperiment is a goroutine-count sweep over one parallel
// operation. GOMAXPROCS records how many cores the host actually had:
// speedups flatten once workers exceed it, and on a single-core runner
// every point is expected near 1.0x.
type scalingExperiment struct {
	Experiment string         `json:"experiment"`
	Segments   int            `json:"segments"`
	Windows    int            `json:"windows,omitempty"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Points     []scalingPoint `json:"points"`
}

// collectKindStats measures the window workload against one database: a
// warm pass over the first warm windows so every kind starts from a
// comparably warm pool, then a timed pass over all of rects whose counter
// deltas become the row. Counters are snapshotted immediately before the
// timed pass and deltaed after it, so neither the warm pass nor any
// earlier measurement on the same database leaks into the row. The Kind
// field is left for the caller.
func collectKindStats(db *segdb.DB, rects []segdb.Rect, warm int) (kindResult, error) {
	sink := func(segdb.SegmentID, segdb.Segment) bool { return true }
	if warm > len(rects) {
		warm = len(rects)
	}
	for _, r := range rects[:warm] {
		if err := db.Window(r, sink); err != nil {
			return kindResult{}, err
		}
	}
	base := db.Metrics()
	start := time.Now()
	for _, r := range rects {
		if err := db.Window(r, sink); err != nil {
			return kindResult{}, err
		}
	}
	elapsed := time.Since(start)
	delta := db.Metrics().Sub(base)
	n := float64(len(rects))
	row := kindResult{
		Segments:         db.Len(),
		Windows:          len(rects),
		OpsPerSec:        n / elapsed.Seconds(),
		DiskAccPerQuery:  float64(delta.DiskAccesses) / n,
		SegCompsPerQuery: float64(delta.SegComps) / n,
		PoolHitRatio:     delta.HitRatio(),
	}
	// The per-kind profile: every window query (warm pass included) was
	// folded into the "window" histograms.
	for _, q := range db.Profile().Queries {
		if q.Kind != "window" {
			continue
		}
		row.LatencyP50Micros = q.LatencyMicros.Quantile(0.5)
		row.LatencyP99Micros = q.LatencyMicros.Quantile(0.99)
		row.DiskAccP50 = q.DiskAccesses.Quantile(0.5)
		row.DiskAccP99 = q.DiskAccesses.Quantile(0.99)
	}
	return row, nil
}

// sweepWindowBatch times the same WindowBatch workload once per worker
// count. One warm batch runs first so the pool state is comparable across
// points; speedups are relative to the first worker count.
func sweepWindowBatch(db *segdb.DB, rects []segdb.Rect, workers []int, gomaxprocs int) (*scalingExperiment, error) {
	sink := func(int, segdb.SegmentID, segdb.Segment) bool { return true }
	if err := db.WindowBatch(rects, 1, sink); err != nil {
		return nil, err
	}
	exp := &scalingExperiment{
		Experiment: "window_batch",
		Segments:   db.Len(),
		Windows:    len(rects),
		GOMAXPROCS: gomaxprocs,
	}
	var base float64
	for _, w := range workers {
		start := time.Now()
		if err := db.WindowBatch(rects, w, sink); err != nil {
			return nil, err
		}
		ops := float64(len(rects)) / time.Since(start).Seconds()
		if len(exp.Points) == 0 {
			base = ops
		}
		exp.Points = append(exp.Points, scalingPoint{Workers: w, OpsPerSec: ops, Speedup: ops / base})
	}
	return exp, nil
}

// sweepOverlay times a full spatial join of a against b once per worker
// count. Ops/sec counts outer-relation probes (each of a's segments costs
// one index probe into b), the unit the join fans across its worker pool.
func sweepOverlay(a, b *segdb.DB, workers []int, gomaxprocs int) (*scalingExperiment, error) {
	sink := func(segdb.SegmentID, segdb.SegmentID, segdb.Segment, segdb.Segment) bool { return true }
	if err := a.OverlayParallel(b, 1, sink); err != nil {
		return nil, err
	}
	exp := &scalingExperiment{
		Experiment: "overlay",
		Segments:   a.Len() + b.Len(),
		GOMAXPROCS: gomaxprocs,
	}
	var base float64
	for _, w := range workers {
		start := time.Now()
		if err := a.OverlayParallel(b, w, sink); err != nil {
			return nil, err
		}
		ops := float64(a.Len()) / time.Since(start).Seconds()
		if len(exp.Points) == 0 {
			base = ops
		}
		exp.Points = append(exp.Points, scalingPoint{Workers: w, OpsPerSec: ops, Speedup: ops / base})
	}
	return exp, nil
}
