// Kernel microbenchmarks for the artifact's "kernels" section: the
// scalar reference, the int32-lane SoA kernel, and the SWAR packed
// kernel timed over the same node-sized rectangle set, plus the
// decode-once cache counters observed during the per-kind query
// workload. The section exists so a PR that regresses the compare
// kernels or the cache hit ratio shows up in the committed artifact
// diff, not only in wall clock.
package main

import (
	"math/rand"
	"testing"

	"segdb/internal/geom"
	"segdb/internal/kernel"
	"segdb/internal/rpage"
)

// kernelsResult is the artifact's "kernels" section. The ns/node
// numbers time one IntersectMask call over a full node's entry lanes;
// the query window cycles per call so the branch predictor cannot
// memorize a fixed hit/miss pattern (see internal/kernel's benchmarks).
// Decode counters come from the R*-tree row of the per-kind workload:
// hits are node visits that skipped the binary page decode entirely.
type kernelsResult struct {
	EntriesPerNode  int     `json:"entries_per_node"`
	ScalarNsPerNode float64 `json:"scalar_ns_per_node"`
	LaneNsPerNode   float64 `json:"lane_ns_per_node"`
	PackedNsPerNode float64 `json:"packed_ns_per_node"`
	PackedSpeedup   float64 `json:"packed_speedup_vs_scalar"`
	// KernelRefBuild flags an artifact generated under -tags kernelref,
	// where every column above times the same scalar code.
	KernelRefBuild    bool    `json:"kernelref_build,omitempty"`
	DecodeCacheHits   uint64  `json:"decode_cache_hits"`
	DecodeCacheMisses uint64  `json:"decode_cache_misses"`
	DecodeSkipRatio   float64 `json:"decode_skip_ratio"`
}

// benchKernelWindows mirrors the kernel package's benchmark shape: many
// distinct windows cycled per call, over one node at the default page
// size's capacity.
const benchKernelWindows = 512

var kernelBenchSink uint64

// collectKernelStats times the three IntersectMask forms over an
// identical node and folds in the decode-cache counters the caller
// observed on the R*-tree query workload.
func collectKernelStats(decodeHits, decodeMisses uint64) kernelsResult {
	entries := rpage.Capacity(1024)
	rng := rand.New(rand.NewSource(1992))
	xmin := make([]int32, entries)
	ymin := make([]int32, entries)
	xmax := make([]int32, entries)
	ymax := make([]int32, entries)
	packed := make([]uint64, entries)
	for i := 0; i < entries; i++ {
		x := rng.Int31n(geom.WorldSize - 800)
		y := rng.Int31n(geom.WorldSize - 800)
		xmin[i], ymin[i] = x, y
		xmax[i], ymax[i] = x+rng.Int31n(800), y+rng.Int31n(800)
		packed[i], _ = kernel.PackRect(xmin[i], ymin[i], xmax[i], ymax[i])
	}
	qs := make([]geom.Rect, benchKernelWindows)
	for i := range qs {
		x := rng.Int31n(geom.WorldSize - 1024)
		y := rng.Int31n(geom.WorldSize - 1024)
		w := rng.Int31n(1024)
		qs[i] = geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+w, y+w)}
	}

	time := func(mask func(q geom.Rect) uint64) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= mask(qs[i%benchKernelWindows])
			}
			kernelBenchSink = sink
		})
		return float64(r.NsPerOp())
	}

	res := kernelsResult{
		EntriesPerNode: entries,
		ScalarNsPerNode: time(func(q geom.Rect) uint64 {
			return kernel.RefIntersectMask(xmin, ymin, xmax, ymax, q)
		}),
		LaneNsPerNode: time(func(q geom.Rect) uint64 {
			return kernel.IntersectMask(xmin, ymin, xmax, ymax, q)
		}),
		PackedNsPerNode: time(func(q geom.Rect) uint64 {
			return kernel.IntersectMaskPacked(packed, q)
		}),
		KernelRefBuild:    kernel.UsingRef,
		DecodeCacheHits:   decodeHits,
		DecodeCacheMisses: decodeMisses,
	}
	if res.PackedNsPerNode > 0 {
		res.PackedSpeedup = res.ScalarNsPerNode / res.PackedNsPerNode
	}
	if total := decodeHits + decodeMisses; total > 0 {
		res.DecodeSkipRatio = float64(decodeHits) / float64(total)
	}
	return res
}
