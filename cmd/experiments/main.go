// Command experiments regenerates every table and figure of Hoel & Samet
// (SIGMOD 1992) on the six synthetic counties.
//
// Usage:
//
//	experiments [-queries N] [-county NAME] table1|figure6|table2|figures789|ablations|faces|all
//
// With no argument it prints the available experiments. The full run
// ("all" with -queries 1000) matches the paper's batch sizes and takes a
// few minutes; EXPERIMENTS.md records a complete transcript.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"segdb/internal/harness"
	"segdb/internal/tiger"
)

func main() {
	queries := flag.Int("queries", 1000, "queries per query type (the paper uses 1000)")
	county := flag.String("county", "Charles", "county for single-map experiments (table2, ablations)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] table1|figure6|table2|figures789|ablations|faces|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if err := run(flag.Arg(0), *county, *queries); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(what, county string, queries int) error {
	opts := harness.DefaultOptions()
	out := os.Stdout

	needMaps := func() ([]*tiger.Map, error) {
		fmt.Fprintf(out, "generating the six synthetic counties...\n")
		return harness.GenerateAll()
	}
	needOne := func() (*tiger.Map, error) {
		spec, ok := tiger.CountyByName(county)
		if !ok {
			return nil, fmt.Errorf("unknown county %q", county)
		}
		return tiger.Generate(spec)
	}

	start := time.Now()
	defer func() { fmt.Fprintf(out, "\n[%s done in %v]\n", what, time.Since(start).Round(time.Millisecond)) }()

	switch what {
	case "table1":
		maps, err := needMaps()
		if err != nil {
			return err
		}
		return harness.Table1(out, maps, opts)

	case "figure6":
		m, err := needOne()
		if err != nil {
			return err
		}
		return harness.Figure6(out, m, []int{512, 1024, 2048, 4096}, []int{8, 16, 32, 64})

	case "table2":
		m, err := needOne()
		if err != nil {
			return err
		}
		return harness.Table2(out, m, queries, opts)

	case "figures789":
		maps, err := needMaps()
		if err != nil {
			return err
		}
		fd, err := harness.Figures(maps, queries, opts)
		if err != nil {
			return err
		}
		harness.PrintFigures(out, fd)
		return nil

	case "ablations":
		m, err := needOne()
		if err != nil {
			return err
		}
		return harness.Ablations(out, m, queries)

	case "faces":
		maps, err := needMaps()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Polygon (map face) statistics — §6 reports avg 19 for Baltimore, 132 for Charles\n")
		fmt.Fprintf(out, "%-14s %-9s | %8s %8s %8s %8s\n", "county", "class", "segs", "faces", "avg", "max")
		for _, m := range maps {
			st, err := tiger.Faces(m)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-14s %-9s | %8d %8d %8.1f %8d\n",
				m.Spec.Name, m.Spec.Kind, len(m.Segments), st.Faces, st.AvgSize, st.MaxSize)
		}
		return nil

	case "all":
		for _, sub := range []string{"faces", "table1", "figure6", "table2", "figures789", "ablations"} {
			fmt.Fprintf(out, "\n===== %s =====\n", sub)
			if err := run(sub, county, queries); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", what)
}
