package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"segdb"
	"segdb/api"
	"segdb/internal/router"
)

// serve builds a sharded router over a county and exposes it over HTTP
// until SIGINT/SIGTERM, then shuts down gracefully. The bound address
// is printed on one line ("listening on http://...") so callers that
// asked for an ephemeral port (-addr 127.0.0.1:0) can parse it.
func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	county := fs.String("county", "Charles", "county name")
	index := fs.String("index", "rstar", "index kind (rstar|rtree|rplus|pmr|kdb|grid)")
	shards := fs.Int("shards", 4, "number of k-d shards")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	cacheEntries := fs.Int("cache", api.DefaultCacheEntries, "result cache entries (negative disables)")
	quantum := fs.Int("quantum", api.DefaultQuantum, "window cache tile size (1 serves exact windows)")
	timeout := fs.Duration("timeout", api.DefaultTimeout, "per-request query timeout")
	staged := fs.Bool("staged", true, "open shards in staged-ingest mode (POST /v1/ingest never blocks readers)")
	fs.Parse(args)

	kind, ok := indexKinds[*index]
	if !ok {
		return fmt.Errorf("unknown index %q (want rstar|rtree|rplus|pmr|kdb|grid)", *index)
	}
	m, err := segdb.GenerateCounty(*county)
	if err != nil {
		return err
	}
	start := time.Now()
	var buildOpts []segdb.Option
	if *staged {
		buildOpts = append(buildOpts, segdb.WithStagedIngest())
	}
	r, err := router.Build(kind, m.Segments, *shards, buildOpts...)
	if err != nil {
		return err
	}
	fmt.Printf("built %d %v shard(s) over %d segments of %s in %v\n",
		r.Shards(), kind, r.Len(), *county, time.Since(start).Round(time.Millisecond))
	for i := 0; i < r.Shards(); i++ {
		cov, _ := r.Shard(i).Coverage()
		fmt.Printf("  shard %d: %d segments, coverage %v\n", i, r.Shard(i).Len(), cov)
	}

	srv, err := api.NewServer(api.Config{
		Router:       r,
		Timeout:      *timeout,
		CacheEntries: *cacheEntries,
		Quantum:      int32(*quantum),
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on http://%s\n", l.Addr())
	os.Stdout.Sync()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, l); err != nil {
		return err
	}
	fmt.Println("shut down cleanly")
	return nil
}
