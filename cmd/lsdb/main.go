// Command lsdb is an interactive front end to the segdb line segment
// database: generate synthetic counties, build any of the six indexes,
// and run the paper's five queries against them with full cost accounting.
//
// Usage:
//
//	lsdb counties
//	lsdb build   -county Baltimore -index pmr
//	lsdb query   -county Baltimore -index pmr -type nearest -x 8000 -y 8000
//	lsdb query   -county Charles   -index rstar -type polygon -x 4000 -y 9000
//	lsdb query   -county Cecil     -index rplus -type window -x 100 -y 100 -w 164 -h 164
//	lsdb query   -county Garrett   -index grid  -type incident -x 8000 -y 8000
//	lsdb verify  -load db.segdb
//	lsdb recover -dir /var/lib/segdb
//	lsdb serve   -county Baltimore -index rstar -shards 4 -addr 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"segdb"
)

var indexKinds = map[string]segdb.Kind{
	"rstar": segdb.RStarTree,
	"rtree": segdb.ClassicRTree,
	"rplus": segdb.RPlusTree,
	"pmr":   segdb.PMRQuadtree,
	"kdb":   segdb.KDBTree,
	"grid":  segdb.UniformGrid,
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "counties":
		err = counties()
	case "build":
		err = build(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "recover":
		err = recoverCmd(os.Args[2:])
	case "compact":
		err = compactCmd(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lsdb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lsdb counties
  lsdb build -county NAME -index rstar|rtree|rplus|pmr|kdb|grid [-save FILE]
  lsdb query -county NAME -index KIND -type nearest|polygon|window|incident -x X -y Y [-w W -h H] [-load FILE]
  lsdb verify [-load FILE | -county NAME -index KIND [-compress N]]
  lsdb recover -dir DIR [-scrub]
  lsdb compact -dir DIR
  lsdb serve -county NAME -index KIND -shards N -addr HOST:PORT [-cache N] [-quantum N] [-timeout D] [-staged=false]`)
}

func counties() error {
	fmt.Printf("%-14s %-10s %s\n", "county", "class", "segments")
	for _, name := range segdb.CountyNames() {
		m, err := segdb.GenerateCounty(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-10s %d\n", m.Name, m.Class, len(m.Segments))
	}
	return nil
}

func load(county, index string) (*segdb.DB, error) {
	return loadLevel(county, index, 0)
}

// loadLevel is load at an explicit page-compression level.
func loadLevel(county, index string, compress int) (*segdb.DB, error) {
	kind, ok := indexKinds[index]
	if !ok {
		return nil, fmt.Errorf("unknown index %q (want rstar|rtree|rplus|pmr|kdb|grid)", index)
	}
	m, err := segdb.GenerateCounty(county)
	if err != nil {
		return nil, err
	}
	db, err := segdb.Open(kind, segdb.WithPageCompression(compress))
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := db.Load(m); err != nil {
		return nil, err
	}
	fmt.Printf("loaded %d segments of %s into a %v in %v\n",
		db.Len(), county, kind, time.Since(start).Round(time.Millisecond))
	return db, nil
}

func build(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	county := fs.String("county", "Charles", "county name")
	index := fs.String("index", "pmr", "index kind")
	save := fs.String("save", "", "write the built database to this file")
	fs.Parse(args)
	db, err := load(*county, *index)
	if err != nil {
		return err
	}
	fmt.Printf("index size: %d KB, segment table: %d KB\n",
		db.IndexSizeBytes()/1024, db.TableSizeBytes()/1024)
	m := db.Metrics()
	fmt.Printf("build cost: %d disk accesses, %d segment fetches, %.1f%% pool hit ratio\n",
		m.DiskAccesses, m.SegComps, 100*m.HitRatio())
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := db.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st, _ := os.Stat(*save)
		fmt.Printf("saved to %s (%d KB)\n", *save, st.Size()/1024)
	}
	return nil
}

// verify opens a database (a saved image via -load, or a freshly built
// county) and runs the full integrity check, printing every problem.
func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	county := fs.String("county", "Charles", "county name")
	index := fs.String("index", "pmr", "index kind")
	compress := fs.Int("compress", 0, "page compression level (0-2) when building")
	file := fs.String("load", "", "verify a saved database file instead of building one")
	fs.Parse(args)

	var db *segdb.DB
	var err error
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			return ferr
		}
		db, err = segdb.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load (corruption is detected here too): %w", err)
		}
		fmt.Printf("opened %s: %v with %d segments\n", *file, db.Kind(), db.Len())
	} else {
		db, err = loadLevel(*county, *index, *compress)
		if err != nil {
			return err
		}
	}
	rep := db.CheckIntegrity()
	fmt.Printf("kind %v, %d segments, %d index pages, %d table pages\n",
		rep.Kind, rep.Segments, rep.IndexPages, rep.TablePages)
	if stats, serr := db.PageFormatStats(); serr == nil && stats.Pages > 0 {
		fmt.Printf("page format: compression level %d, %d pages, %.0f bytes/page, leaf fanout %.1f\n",
			stats.Level, stats.Pages, stats.AvgBytesPerPage(), stats.AvgLeafFanout())
		for _, format := range []string{"v1", "v3", "v3-16", "v3-8"} {
			if n := stats.Formats[format]; n > 0 {
				fmt.Printf("  %-6s %d pages\n", format, n)
			}
		}
	}
	if rep.Healthy() {
		fmt.Println("integrity: OK (every check passed)")
		return nil
	}
	fmt.Printf("integrity: %d problem(s)\n", len(rep.Problems))
	for _, p := range rep.Problems {
		fmt.Println("  -", p)
	}
	return fmt.Errorf("database failed verification")
}

// recoverCmd replays a WAL directory (checkpoint + log) into a live
// database, reports what was rolled forward, optionally scrubs, and
// verifies the result.
func recoverCmd(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	dir := fs.String("dir", "", "WAL directory (from segdb.Open with WithWAL)")
	scrub := fs.Bool("scrub", true, "verify page checksums and repair quarantined pages after recovery")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("recover: -dir is required")
	}
	db, rep, err := segdb.Recover(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("recovered %v with %d segments from %s\n", db.Kind(), db.Len(), *dir)
	fmt.Printf("checkpoint: epoch %d, %d committed mutations\n", rep.CheckpointEpoch, rep.CheckpointSeq)
	fmt.Printf("rolled forward: %d transactions, %d pages (now at mutation %d)\n",
		rep.Transactions, rep.PagesReplayed, rep.Seq)
	if rep.TornTail {
		fmt.Println("log ended in a torn, uncommitted tail (discarded — expected after a crash)")
	}
	if *scrub {
		srep, err := db.Scrub()
		if err != nil {
			return err
		}
		fmt.Printf("scrub: %d pages checked, %d bad index pages, %d bad table pages, %d repaired, %d unrepairable\n",
			srep.CheckedPages, len(srep.BadIndexPages), len(srep.BadTablePages), srep.Repaired, srep.Unrepairable)
		if srep.Unrepairable > 0 {
			return fmt.Errorf("%d page(s) could not be repaired from the checkpoint and log", srep.Unrepairable)
		}
	}
	irep := db.CheckIntegrity()
	if !irep.Healthy() {
		for _, p := range irep.Problems {
			fmt.Println("  -", p)
		}
		return fmt.Errorf("recovered database failed verification")
	}
	fmt.Println("integrity: OK (every check passed)")
	return nil
}

// compactCmd folds a staged-ingest database's WAL tail into its disk
// index offline: recovery replays the staged operations into a bulk
// rebuild and cuts a fresh checkpoint, so the next open starts with an
// empty staging tier and an empty log.
func compactCmd(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("dir", "", "WAL directory (from segdb.Open with WithWAL)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("compact: -dir is required")
	}
	db, rep, err := segdb.Recover(*dir, segdb.WithStagedIngest())
	if err != nil {
		return err
	}
	fmt.Printf("opened %v with %d segments from %s\n", db.Kind(), db.Len(), *dir)
	fmt.Printf("folded %d staged operation(s) into the disk index\n", rep.StagedReplayed)
	if err := db.Compact(); err != nil {
		return err
	}
	epoch, _ := db.Epoch()
	fmt.Printf("compacted: epoch %d, staging tier empty, checkpoint cut (WAL %d bytes)\n",
		epoch, db.WALSize())
	irep := db.CheckIntegrity()
	if !irep.Healthy() {
		for _, p := range irep.Problems {
			fmt.Println("  -", p)
		}
		return fmt.Errorf("compacted database failed verification")
	}
	fmt.Println("integrity: OK (every check passed)")
	return nil
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	county := fs.String("county", "Charles", "county name")
	index := fs.String("index", "pmr", "index kind")
	qtype := fs.String("type", "nearest", "nearest|polygon|window|incident")
	x := fs.Int("x", 8192, "query x coordinate")
	y := fs.Int("y", 8192, "query y coordinate")
	w := fs.Int("w", 164, "window width (window query)")
	h := fs.Int("h", 164, "window height (window query)")
	file := fs.String("load", "", "open a saved database instead of building one")
	fs.Parse(args)

	var db *segdb.DB
	var err error
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			return ferr
		}
		db, err = segdb.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("opened %s: %v with %d segments\n", *file, db.Kind(), db.Len())
	} else {
		db, err = load(*county, *index)
		if err != nil {
			return err
		}
	}
	p := segdb.Pt(int32(*x), int32(*y))
	var qerr error
	cost, err := db.Measure(func() error {
		switch *qtype {
		case "nearest":
			res, err := db.Nearest(p)
			if err != nil {
				return err
			}
			if !res.Found {
				fmt.Println("no segments in the database")
				return nil
			}
			fmt.Printf("nearest segment #%d: %v (distance %.2f)\n",
				res.ID, res.Seg, math.Sqrt(res.DistSq))
		case "polygon":
			poly, err := db.EnclosingPolygon(p)
			if err != nil {
				return err
			}
			fmt.Printf("enclosing polygon has %d boundary segments", poly.Size())
			if poly.Size() <= 16 {
				fmt.Printf(": %v", poly.IDs)
			}
			fmt.Println()
		case "window":
			r := segdb.RectOf(int32(*x), int32(*y), int32(*x+*w-1), int32(*y+*h-1))
			count := 0
			if err := db.Window(r, func(segdb.SegmentID, segdb.Segment) bool {
				count++
				return true
			}); err != nil {
				return err
			}
			fmt.Printf("%d segments intersect window %v\n", count, r)
		case "incident":
			count := 0
			if err := db.IncidentAt(p, func(id segdb.SegmentID, s segdb.Segment) bool {
				count++
				fmt.Printf("  segment #%d: %v\n", id, s)
				return true
			}); err != nil {
				return err
			}
			fmt.Printf("%d segments incident at %v\n", count, p)
		default:
			qerr = fmt.Errorf("unknown query type %q", *qtype)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if qerr != nil {
		return qerr
	}
	fmt.Printf("cost: %d disk accesses, %d segment comparisons, %d bbox/bucket computations\n",
		cost.DiskAccesses, cost.SegComps, cost.NodeComps)
	return nil
}
