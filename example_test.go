package segdb_test

import (
	"fmt"
	"log"

	"segdb"
)

// Example indexes a tiny noded road network in a PMR quadtree and runs
// the five queries of Hoel & Samet (SIGMOD 1992).
func Example() {
	db, err := segdb.Open(segdb.PMRQuadtree, nil)
	if err != nil {
		log.Fatal(err)
	}
	// A square city block; segments share endpoints (a noded map).
	ids := make([]segdb.SegmentID, 4)
	for i, s := range []segdb.Segment{
		segdb.Seg(100, 100, 200, 100),
		segdb.Seg(200, 100, 200, 200),
		segdb.Seg(200, 200, 100, 200),
		segdb.Seg(100, 200, 100, 100),
	} {
		if ids[i], err = db.Add(s); err != nil {
			log.Fatal(err)
		}
	}

	// Query 1: segments meeting at a corner.
	n := 0
	db.IncidentAt(segdb.Pt(200, 100), func(segdb.SegmentID, segdb.Segment) bool {
		n++
		return true
	})
	fmt.Println("incident at corner:", n)

	// Query 3: nearest road to a point inside the block.
	res, _ := db.Nearest(segdb.Pt(150, 120))
	fmt.Println("nearest:", res.Seg)

	// Query 4: the enclosing polygon (the block itself).
	poly, _ := db.EnclosingPolygon(segdb.Pt(150, 150))
	fmt.Println("polygon size:", poly.Size())

	// Query 5: window search.
	n = 0
	db.Window(segdb.RectOf(0, 0, 150, 300), func(segdb.SegmentID, segdb.Segment) bool {
		n++
		return true
	})
	fmt.Println("in window:", n)

	// Output:
	// incident at corner: 2
	// nearest: (100,100)-(200,100)
	// polygon size: 4
	// in window: 3
}

// ExampleDB_Measure costs a query in the paper's three metrics.
func ExampleDB_Measure() {
	db, _ := segdb.Open(segdb.RStarTree, nil)
	for x := int32(0); x < 5000; x += 100 {
		db.Add(segdb.Seg(x, 1000, x+80, 1040))
	}
	db.DropCaches() // cold start
	cost, _ := db.Measure(func() error {
		_, err := db.Nearest(segdb.Pt(2500, 1500))
		return err
	})
	fmt.Println(cost.DiskAccesses > 0, cost.SegComps > 0, cost.NodeComps > 0)
	// Output: true true true
}

// ExampleDB_NearestK ranks the three nearest segments.
func ExampleDB_NearestK() {
	db, _ := segdb.Open(segdb.RPlusTree, nil)
	db.Add(segdb.Seg(0, 10, 100, 10))
	db.Add(segdb.Seg(0, 30, 100, 30))
	db.Add(segdb.Seg(0, 90, 100, 90))
	res, _ := db.NearestK(segdb.Pt(50, 0), 3)
	for _, r := range res {
		fmt.Println(r.Seg)
	}
	// Output:
	// (0,10)-(100,10)
	// (0,30)-(100,30)
	// (0,90)-(100,90)
}

// ExampleDB_Overlay joins two maps, reporting each crossing once.
func ExampleDB_Overlay() {
	roads, _ := segdb.Open(segdb.PMRQuadtree, nil)
	rails, _ := segdb.Open(segdb.PMRQuadtree, nil)
	roads.Add(segdb.Seg(0, 100, 400, 100)) // east-west road
	rails.Add(segdb.Seg(200, 0, 200, 400)) // north-south rail
	rails.Add(segdb.Seg(300, 0, 390, 90))  // rail that stops short

	crossings := 0
	roads.Overlay(rails, func(_, _ segdb.SegmentID, _, _ segdb.Segment) bool {
		crossings++
		return true
	})
	fmt.Println("crossings:", crossings)
	// Output: crossings: 1
}
