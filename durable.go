// Durability layer: write-ahead logging, the two-file checkpoint
// protocol, crash recovery, and degraded-read repair (Scrub).
//
// A database opened with WithWAL (or WithWALFS) keeps two files in its
// log directory:
//
//   - checkpoint.segdb — an atomic snapshot of the whole database: a
//     small CRC-protected prelude (epoch, mutation count) followed by
//     the Save image. It is always replaced via write-temp + fsync +
//     rename, so a crash leaves either the old checkpoint or the new
//     one, never a torn hybrid.
//   - wal.log — the write-ahead log. Every mutation (Add, Delete,
//     Load, AddBatch) appends the page images it changed and seals them
//     with a CRC-framed commit record carrying the free lists, page
//     counts, table length, and index metadata; the commit is synced
//     before the mutation returns. Replay is prefix-valid: recovery
//     applies committed transactions in order and discards the tail at
//     the first torn or corrupt frame.
//
// Commit records are stamped with an epoch so a log that was not yet
// truncated when the process died cannot smear stale pages over a newer
// checkpoint: a checkpoint at epoch E is followed by commits at epoch
// E+1, and recovery replays only commits with epoch > E.
package segdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"runtime"
	"sort"

	"segdb/internal/seg"
	"segdb/internal/store"
)

// Durability and fault-tolerance types, re-exported from internal/store.
type (
	// RetryPolicy makes both disks retry transiently failing page reads
	// and writes with exponential backoff; see WithRetryPolicy.
	RetryPolicy = store.RetryPolicy
	// WALFS is the filesystem surface the WAL and checkpoint protocol
	// write through; see WithWALFS.
	WALFS = store.WALFS
	// MemWALFS is an in-memory WALFS with deterministic crash injection
	// for recovery harnesses.
	MemWALFS = store.MemWALFS
	// PageID identifies a page of one of the database's simulated disks.
	PageID = store.PageID
)

// NewMemWALFS returns an empty in-memory WAL filesystem (crash-injection
// harnesses; production code uses WithWAL over a real directory).
func NewMemWALFS() *MemWALFS { return store.NewMemWALFS() }

// File names inside the WAL directory.
const (
	walFileName     = "wal.log"
	ckptFileName    = "checkpoint.segdb"
	ckptTmpFileName = "checkpoint.tmp"
)

// ckptMagic opens a checkpoint file ("SDBCKP" + version); the prelude
// that follows is epoch (u64), seq (u64), and a CRC32 of the first 24
// bytes, then the regular Save image (which carries its own checksums).
var ckptMagic = [8]byte{'S', 'D', 'B', 'C', 'K', 'P', '0', '1'}

const ckptPreludeSize = 8 + 8 + 8 + 4

// initWAL arms durability on a freshly opened (empty) database: it
// refuses a directory that already holds a checkpoint (that state wants
// Recover, not an overwrite), turns on write journaling, and cuts the
// initial checkpoint + empty log.
func (db *DB) initWAL(wfs store.WALFS) error {
	if _, err := wfs.ReadFile(ckptFileName); err == nil {
		return fmt.Errorf("segdb: WAL directory already holds a checkpoint; use Recover to reopen it (or remove %s to start fresh)", ckptFileName)
	} else if !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	db.walfs = wfs
	db.walEpoch = 0
	db.walSeq = 0
	db.pool.Disk().SetJournal(true)
	db.table.Disk().SetJournal(true)
	return db.checkpointLocked()
}

// walCommit captures every page changed since the last commit into the
// WAL and seals them with a synced commit record. Callers hold the
// writer lock; with no WAL attached it is a no-op.
func (db *DB) walCommit() error {
	if db.wal == nil {
		return nil
	}
	db.walSeq++
	if err := db.walCapture(store.WALDiskIndex, db.pool); err != nil {
		return err
	}
	if err := db.walCapture(store.WALDiskTable, db.table.Pool()); err != nil {
		return err
	}
	meta, err := db.indexMeta()
	if err != nil {
		return err
	}
	return db.wal.AppendCommit(store.WALCommit{
		Epoch:      db.walEpoch,
		Seq:        db.walSeq,
		TableCount: uint32(db.table.Len()),
		Meta:       meta,
		Disks:      db.walDiskStates(),
	})
}

// walCapture logs the pages of one disk that changed since the last
// commit: dirty buffer-pool frames (content newer than the disk) plus
// journaled write-through pages not shadowed by a dirty frame.
func (db *DB) walCapture(diskTag uint8, pool *store.Pool) error {
	disk := pool.Disk()
	journal := disk.DrainJournal()
	dirty := make(map[store.PageID]bool)
	var err error
	pool.ForEachDirty(func(id store.PageID, data []byte) {
		if err != nil {
			return
		}
		dirty[id] = true
		err = db.wal.AppendPage(diskTag, id, data)
	})
	if err != nil {
		return err
	}
	for _, id := range journal {
		if dirty[id] {
			continue
		}
		data, rerr := disk.RawPage(id)
		if rerr != nil {
			return rerr
		}
		if err := db.wal.AppendPage(diskTag, id, data); err != nil {
			return err
		}
	}
	return nil
}

// walDiskStates snapshots both disks' page counts and free lists for a
// commit record.
func (db *DB) walDiskStates() [2]store.WALDiskState {
	var s [2]store.WALDiskState
	s[store.WALDiskIndex] = store.WALDiskState{
		Pages: uint32(db.pool.Disk().PageCount()),
		Free:  db.pool.Disk().FreeList(),
	}
	s[store.WALDiskTable] = store.WALDiskState{
		Pages: uint32(db.table.Disk().PageCount()),
		Free:  db.table.Disk().FreeList(),
	}
	return s
}

// Checkpoint folds the write-ahead log into a fresh atomic checkpoint
// and truncates the log. Recovery time is proportional to the log since
// the last checkpoint, so long-running writers should checkpoint
// periodically. It takes the writer lock.
//
// In staged-ingest mode a non-empty staging tier is compacted first:
// the checkpoint image is the disk state, so the invariant "checkpoint
// ⇒ empty memtable" keeps the image complete (compaction itself cuts
// the checkpoint in that case).
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.walfs == nil {
		return ErrNoWAL
	}
	if db.stagedMode() && (db.mem.Len() > 0 || len(db.tombs) > 0) {
		return db.compactLocked()
	}
	return db.checkpointLocked()
}

// checkpointLocked writes checkpoint epoch db.walEpoch via the two-file
// protocol (write temp in one call, sync, rename over the old file),
// then starts a fresh log and bumps the epoch for subsequent commits.
// A crash at any point leaves either the old checkpoint (with its still
// fully replayable log) or the new one (whose epoch filter ignores any
// leftover log).
func (db *DB) checkpointLocked() error {
	if err := db.table.Flush(); err != nil {
		return err
	}
	if err := db.pool.Flush(); err != nil {
		return err
	}
	// The flush's disk writes are part of the checkpoint image; drop them
	// from the journal so the next commit does not re-log them.
	db.pool.Disk().DrainJournal()
	db.table.Disk().DrainJournal()
	var buf bytes.Buffer
	buf.Write(ckptMagic[:])
	binary.Write(&buf, binary.LittleEndian, db.walEpoch)
	binary.Write(&buf, binary.LittleEndian, db.walSeq)
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes()))
	if err := db.writeSnapshot(&buf); err != nil {
		return err
	}
	f, err := db.walfs.Create(ckptTmpFileName)
	if err != nil {
		return err
	}
	// One Write call: a simulated crash tears the temp file, never the
	// live checkpoint, and the rename below is atomic.
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := db.walfs.Rename(ckptTmpFileName, ckptFileName); err != nil {
		return err
	}
	if db.wal != nil {
		db.wal.Close()
	}
	w, err := store.CreateWAL(db.walfs, walFileName)
	if err != nil {
		db.wal = nil
		return err
	}
	db.wal = w
	db.walEpoch++
	return nil
}

// RecoveryReport describes what Recover rebuilt.
type RecoveryReport struct {
	// CheckpointEpoch is the epoch of the checkpoint recovery started
	// from; CheckpointSeq its mutation count.
	CheckpointEpoch uint64
	CheckpointSeq   uint64
	// Transactions and PagesReplayed count the committed WAL work rolled
	// forward on top of the checkpoint.
	Transactions  int
	PagesReplayed int
	// TornTail reports that the log ended in a discarded tail — a
	// truncated or CRC-failed frame, or page records never sealed by a
	// commit — which is exactly what a mid-write crash leaves.
	TornTail bool
	// Seq is the mutation count of the recovered state.
	Seq uint64
	// StagedReplayed counts staged-ingest operations (memtable adds and
	// deletes) found in the log and folded into the rebuilt index.
	StagedReplayed int
}

// Recover reopens a crashed (or cleanly closed) durable database from
// its WAL directory: the latest checkpoint is loaded and every
// committed WAL transaction after it is replayed. The recovered
// database is durable again — a fresh checkpoint is cut and the log
// truncated before Recover returns. Options contribute runtime settings
// only (retry policy, degraded reads, fault policy, tracer); the
// structural configuration comes from the checkpoint image.
func Recover(dir string, opts ...Option) (*DB, *RecoveryReport, error) {
	wfs, err := store.NewDirWALFS(dir)
	if err != nil {
		return nil, nil, err
	}
	return RecoverFS(wfs, opts...)
}

// RecoverFS is Recover over an explicit WALFS (e.g. a MemWALFS crash
// harness).
func RecoverFS(wfs WALFS, opts ...Option) (*DB, *RecoveryReport, error) {
	st, err := replayDurableState(wfs)
	if err != nil {
		return nil, nil, err
	}
	o := resolveOptions(opts)
	dbOpts := st.opts
	dbOpts.FaultPolicy = o.FaultPolicy
	dbOpts.Tracer = o.Tracer
	dbOpts.RetryPolicy = o.RetryPolicy
	dbOpts.DegradedReads = o.DegradedReads
	dbOpts.StagedIngest = o.StagedIngest
	dbOpts.CompactThreshold = o.CompactThreshold
	pool := store.NewShardedPool(st.disk, dbOpts.PoolPages, dbOpts.PoolShards)
	ix, err := restoreIndex(st.kind, dbOpts, pool, st.table, st.meta)
	if err != nil {
		return nil, nil, err
	}
	db := &DB{
		seq:   dbSeq.Add(1),
		kind:  st.kind,
		opts:  dbOpts,
		table: st.table,
		pool:  pool,
		index: ix,
	}
	db.setTracer(dbOpts.Tracer)
	db.degraded.Store(dbOpts.DegradedReads)
	if dbOpts.FaultPolicy != nil {
		db.pool.Disk().SetFaultPolicy(dbOpts.FaultPolicy)
		db.table.Disk().SetFaultPolicy(dbOpts.FaultPolicy)
	}
	if dbOpts.RetryPolicy != nil {
		db.pool.Disk().SetRetryPolicy(dbOpts.RetryPolicy)
		db.table.Disk().SetRetryPolicy(dbOpts.RetryPolicy)
	}
	db.walfs = wfs
	db.walEpoch = st.lastEpoch
	db.walSeq = st.seq
	db.pool.Disk().SetJournal(true)
	db.table.Disk().SetJournal(true)
	if len(st.staged) > 0 {
		// The log holds staged-ingest operations: the previous run's
		// memtable. Its segment geometry is already in the replayed table
		// pages; fold the operations into the index by rebuilding it over
		// the final live set ("recovery replays the memtable").
		if err := db.foldStagedRecovery(st.staged); err != nil {
			return nil, nil, err
		}
	}
	if err := db.checkpointLocked(); err != nil {
		return nil, nil, err
	}
	if o.StagedIngest {
		if err := db.initStaged(); err != nil {
			return nil, nil, err
		}
	}
	return db, &RecoveryReport{
		CheckpointEpoch: st.epoch,
		CheckpointSeq:   st.ckptSeq,
		Transactions:    st.txns,
		PagesReplayed:   st.pages,
		TornTail:        st.torn,
		Seq:             st.seq,
		StagedReplayed:  len(st.staged),
	}, nil
}

// foldStagedRecovery applies replayed staged operations to the
// recovered base index: the live set after the operations is the base's
// live segments plus staged adds minus every delete, and the index is
// bulk-rebuilt over it.
func (db *DB) foldStagedRecovery(ops []store.WALStagedOp) error {
	base, err := db.collectLiveIDs(db.index)
	if err != nil {
		return err
	}
	live := make(map[seg.ID]bool, len(base)+len(ops))
	for _, id := range base {
		live[id] = true
	}
	for _, op := range ops {
		if op.Del {
			delete(live, seg.ID(op.ID))
		} else {
			live[seg.ID(op.ID)] = true
		}
	}
	ids := make([]seg.ID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return db.rebuildBulk(ids)
}

// replayedState is the durable state of a WAL directory, materialized:
// the checkpoint image with every committed WAL transaction applied.
type replayedState struct {
	kind  Kind
	opts  Options
	meta  []uint64
	table *seg.Table
	disk  *store.Disk // index disk

	epoch     uint64 // checkpoint epoch
	ckptSeq   uint64 // checkpoint mutation count
	lastEpoch uint64 // epoch of the newest replayed commit (= epoch if none)
	seq       uint64 // mutation count after replay
	txns      int
	pages     int
	torn      bool

	// staged is the concatenation of every committed transaction's
	// staged-ingest operations, in commit order: the previous run's
	// memtable as the log remembers it.
	staged []store.WALStagedOp
}

// replayDurableState loads the checkpoint and rolls the WAL forward over
// it. Shared by Recover (which then builds a live DB from it) and Scrub
// (which uses it as the known-good source for repairing bad pages).
func replayDurableState(wfs store.WALFS) (*replayedState, error) {
	ckpt, err := wfs.ReadFile(ckptFileName)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, fmt.Errorf("segdb: no checkpoint in WAL directory (nothing to recover): %w", err)
		}
		return nil, err
	}
	if len(ckpt) < ckptPreludeSize || [8]byte(ckpt[:8]) != ckptMagic {
		return nil, fmt.Errorf("segdb: not a checkpoint file (magic %q)", ckpt[:min(len(ckpt), 8)])
	}
	if got, want := crc32.ChecksumIEEE(ckpt[:24]), binary.LittleEndian.Uint32(ckpt[24:28]); got != want {
		return nil, fmt.Errorf("segdb: checkpoint prelude checksum mismatch (file %#08x, computed %#08x): %w", want, got, store.ErrChecksum)
	}
	st := &replayedState{
		epoch:   binary.LittleEndian.Uint64(ckpt[8:16]),
		ckptSeq: binary.LittleEndian.Uint64(ckpt[16:24]),
	}
	st.kind, st.opts, st.meta, st.table, st.disk, err = loadImage(bytes.NewReader(ckpt[ckptPreludeSize:]))
	if err != nil {
		return nil, fmt.Errorf("segdb: loading checkpoint image: %w", err)
	}
	st.lastEpoch = st.epoch
	st.seq = st.ckptSeq
	walData, err := wfs.ReadFile(walFileName)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			// Crashed between the checkpoint rename and the new log's
			// creation: the checkpoint alone is the state.
			return st, nil
		}
		return nil, err
	}
	txns, torn, err := store.ReadWAL(walData, st.epoch)
	if err != nil {
		if len(walData) < 8 {
			// The log's magic itself was the torn write; an empty log.
			st.torn = true
			return st, nil
		}
		return nil, err
	}
	st.torn = torn
	var last *store.WALCommit
	for _, txn := range txns {
		for _, p := range txn.Pages {
			var disk *store.Disk
			switch p.Disk {
			case store.WALDiskIndex:
				disk = st.disk
			case store.WALDiskTable:
				disk = st.table.Disk()
			default:
				return nil, fmt.Errorf("segdb: WAL page for unknown disk %d", p.Disk)
			}
			disk.EnsurePages(int(p.Page) + 1)
			if err := disk.RawRestore(p.Page, p.Data); err != nil {
				return nil, err
			}
			st.pages++
		}
		st.txns++
		st.staged = append(st.staged, txn.Staged...)
		last = &txn.Commit
	}
	if last != nil {
		st.disk.EnsurePages(int(last.Disks[store.WALDiskIndex].Pages))
		st.disk.SetFreeList(last.Disks[store.WALDiskIndex].Free)
		st.table.Disk().EnsurePages(int(last.Disks[store.WALDiskTable].Pages))
		st.table.Disk().SetFreeList(last.Disks[store.WALDiskTable].Free)
		st.table.SetLen(int(last.TableCount))
		st.meta = last.Meta
		st.lastEpoch = last.Epoch
		st.seq = last.Seq
	}
	return st, nil
}

// ScrubReport is the outcome of DB.Scrub.
type ScrubReport struct {
	// CheckedPages is the number of in-use pages whose checksums were
	// verified (both disks).
	CheckedPages int
	// BadIndexPages and BadTablePages list the pages found corrupt or
	// quarantined on each disk, in ascending order.
	BadIndexPages []PageID
	BadTablePages []PageID
	// Repaired counts pages rewritten from the checkpoint + WAL;
	// Unrepairable counts pages for which the durable state held no
	// image (it stays quarantined).
	Repaired     int
	Unrepairable int
}

// Clean reports whether the scrub found nothing to repair.
func (r *ScrubReport) Clean() bool {
	return len(r.BadIndexPages) == 0 && len(r.BadTablePages) == 0
}

// Scrub walks both disks verifying every in-use page's checksum, then
// repairs each corrupt or quarantined page from the durable state (last
// checkpoint + committed WAL), clearing its quarantine so degraded-mode
// queries see the page again. Because every mutation commits to the WAL
// before returning, the durable state matches the live state and a
// repaired page is byte-identical to what the query path expects.
// It takes the writer lock.
func (db *DB) Scrub() (*ScrubReport, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.walfs == nil {
		return nil, ErrNoWAL
	}
	r := &ScrubReport{
		CheckedPages:  db.pool.Disk().PagesInUse() + db.table.Disk().PagesInUse(),
		BadIndexPages: badOrQuarantined(db.pool.Disk()),
		BadTablePages: badOrQuarantined(db.table.Disk()),
	}
	if r.Clean() {
		return r, nil
	}
	st, err := replayDurableState(db.walfs)
	if err != nil {
		return r, err
	}
	if err := db.repairPages(db.pool, st.disk, r.BadIndexPages, r); err != nil {
		return r, err
	}
	if err := db.repairPages(db.table.Pool(), st.table.Disk(), r.BadTablePages, r); err != nil {
		return r, err
	}
	// Repairs rewrote the pages through RawRestore, which bypasses the
	// journal; the durable state is their source, so there is nothing new
	// to log.
	return r, nil
}

// repairPages rewrites each bad page of the live disk from the shadow
// (durable) disk and discards any stale cached copy. In staged-ingest
// mode queries hold no lock, so a snapshot reader may have the stale
// frame pinned at this instant; pins are released at page granularity
// within queries, so a short bounded spin drains them. A frame that
// stays pinned is a bug, not contention — fail loudly rather than leave
// a silently stale cache over a repaired page.
func (db *DB) repairPages(pool *store.Pool, shadow *store.Disk, bad []PageID, r *ScrubReport) error {
	disk := pool.Disk()
	for _, id := range bad {
		data, err := shadow.RawPage(id)
		if err != nil {
			// The durable image has no such page (it was never committed);
			// leave it quarantined rather than fabricate contents.
			r.Unrepairable++
			continue
		}
		if err := disk.RawRestore(id, data); err != nil {
			return err
		}
		dropped := pool.Discard(id)
		for spin := 0; !dropped && spin < 10000; spin++ {
			runtime.Gosched()
			dropped = pool.Discard(id)
		}
		if !dropped {
			return fmt.Errorf("segdb: page %d stayed pinned throughout scrub repair; stale cache not discarded", id)
		}
		r.Repaired++
	}
	return nil
}

// badOrQuarantined returns the union of the disk's checksum-failing
// in-use pages and its quarantined pages, ascending.
func badOrQuarantined(d *store.Disk) []PageID {
	bad := d.BadPages()
	seen := make(map[PageID]bool, len(bad))
	for _, id := range bad {
		seen[id] = true
	}
	for _, id := range d.Quarantined() {
		if !seen[id] {
			bad = append(bad, id)
		}
	}
	// Both inputs are sorted, but the merge above may interleave; re-sort.
	for i := 1; i < len(bad); i++ {
		for j := i; j > 0 && bad[j] < bad[j-1]; j-- {
			bad[j], bad[j-1] = bad[j-1], bad[j]
		}
	}
	return bad
}

// Quarantined returns the pages currently quarantined on each disk
// (skipped by degraded-mode queries until Scrub repairs them).
func (db *DB) Quarantined() (index, table []PageID) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.pool.Disk().Quarantined(), db.table.Disk().Quarantined()
}

// SetRetryPolicy attaches (or with nil detaches) a retry policy to both
// disks: transient injected read/write faults are retried with
// exponential backoff before surfacing, and every retry is counted in
// Metrics.Retries and QueryStats.Retries.
func (db *DB) SetRetryPolicy(rp *RetryPolicy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.pool.Disk().SetRetryPolicy(rp)
	db.table.Disk().SetRetryPolicy(rp)
}

// SetDegradedReads toggles degraded-read mode at runtime (see
// WithDegradedReads): queries skip quarantined pages, reporting them in
// QueryStats.SkippedPages, instead of failing. The flag itself is
// atomic (queries read it lock-free); the writer lock keeps the Options
// mirror consistent for observers.
func (db *DB) SetDegradedReads(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.opts.DegradedReads = on
	db.degraded.Store(on)
}

// WALSize returns the current write-ahead log size in bytes, or 0 with
// no WAL attached (a growth signal for when to Checkpoint).
func (db *DB) WALSize() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}
