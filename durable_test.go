package segdb

import (
	"errors"
	"strings"
	"testing"

	"segdb/internal/store"
)

// windowIDs (sorted window-query IDs) is shared with bulk_equiv_test.go.

func sameIDs(a, b []SegmentID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWALRecoverRoundTrip exercises the happy path for every kind: open
// durable, mutate, "crash" (drop the DB object), recover from the files
// alone, and require an identical database.
func TestWALRecoverRoundTrip(t *testing.T) {
	segs := crashSegments(80, 11)
	for _, kind := range crashKinds {
		t.Run(kind.String(), func(t *testing.T) {
			wfs := NewMemWALFS()
			db, err := Open(kind, WithWALFS(wfs))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			for _, s := range segs {
				if _, err := db.Add(s); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
			if err := db.Delete(3); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			want := windowIDs(t, db, World())
			// The DB object is simply dropped: everything Recover needs must
			// already be durable in wfs.
			db2, rep, err := RecoverFS(wfs)
			if err != nil {
				t.Fatalf("RecoverFS: %v", err)
			}
			if db2.Kind() != kind {
				t.Errorf("recovered kind %v, want %v", db2.Kind(), kind)
			}
			if db2.Len() != len(segs) {
				t.Errorf("recovered %d segments, want %d", db2.Len(), len(segs))
			}
			if rep.Transactions != len(segs)+1 {
				t.Errorf("report: %d transactions, want %d", rep.Transactions, len(segs)+1)
			}
			if rep.Seq != uint64(len(segs)+1) {
				t.Errorf("report: seq %d, want %d", rep.Seq, len(segs)+1)
			}
			if rep.TornTail {
				t.Error("clean shutdown reported a torn tail")
			}
			if r := db2.CheckIntegrity(); !r.Healthy() {
				t.Fatalf("recovered db unhealthy: %v", r.Err())
			}
			if got := windowIDs(t, db2, World()); !sameIDs(got, want) {
				t.Errorf("recovered window: %d ids, want %d", len(got), len(want))
			}
			// The recovered database is durable again: mutate and re-recover.
			if _, err := db2.Add(Seg(1, 1, 2, 2)); err != nil {
				t.Fatalf("Add after recovery: %v", err)
			}
			db3, _, err := RecoverFS(wfs)
			if err != nil {
				t.Fatalf("second RecoverFS: %v", err)
			}
			if db3.Len() != len(segs)+1 {
				t.Errorf("second recovery has %d segments, want %d", db3.Len(), len(segs)+1)
			}
		})
	}
}

func TestOpenRefusesExistingCheckpoint(t *testing.T) {
	wfs := NewMemWALFS()
	if _, err := Open(UniformGrid, WithWALFS(wfs)); err != nil {
		t.Fatal(err)
	}
	_, err := Open(UniformGrid, WithWALFS(wfs))
	if err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("second Open = %v, want refusal pointing at Recover", err)
	}
}

func TestRecoverWithoutCheckpoint(t *testing.T) {
	if _, _, err := RecoverFS(NewMemWALFS()); err == nil {
		t.Fatal("recovery of an empty WALFS succeeded")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	wfs := NewMemWALFS()
	db, err := Open(PMRQuadtree, WithWALFS(wfs))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range crashSegments(60, 12) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	grown := db.WALSize()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if after := db.WALSize(); after >= grown {
		t.Errorf("WAL not truncated: %d -> %d bytes", grown, after)
	}
	// More mutations after the checkpoint land in the new epoch.
	if _, err := db.Add(Seg(5, 5, 6, 6)); err != nil {
		t.Fatal(err)
	}
	db2, rep, err := RecoverFS(wfs)
	if err != nil {
		t.Fatalf("RecoverFS: %v", err)
	}
	if db2.Len() != 61 {
		t.Errorf("recovered %d segments, want 61", db2.Len())
	}
	if rep.Transactions != 1 {
		t.Errorf("replayed %d transactions, want 1 (the post-checkpoint Add)", rep.Transactions)
	}
	if r := db2.CheckIntegrity(); !r.Healthy() {
		t.Fatalf("unhealthy after checkpoint+recover: %v", r.Err())
	}
}

// TestStaleWALIgnoredAfterCheckpoint pins the epoch filter: a WAL left
// over from before a checkpoint (the crash window between the rename
// and the log truncation) must not replay onto the newer image.
func TestStaleWALIgnoredAfterCheckpoint(t *testing.T) {
	wfs := NewMemWALFS()
	db, err := Open(RStarTree, WithWALFS(wfs))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range crashSegments(30, 13) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	preWAL, err := wfs.ReadFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Restore the pre-checkpoint log, as a crash between the checkpoint
	// rename and the truncation would leave it.
	f, err := wfs.Create("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(preWAL); err != nil {
		t.Fatal(err)
	}
	db2, rep, err := RecoverFS(wfs)
	if err != nil {
		t.Fatalf("RecoverFS: %v", err)
	}
	if rep.Transactions != 0 {
		t.Errorf("stale log replayed %d transactions, want 0", rep.Transactions)
	}
	if db2.Len() != 30 {
		t.Errorf("recovered %d segments, want 30", db2.Len())
	}
	if r := db2.CheckIntegrity(); !r.Healthy() {
		t.Fatalf("unhealthy: %v", r.Err())
	}
}

// TestAddBatchDurable pins the bulk path: AddBatch on an empty durable
// database replaces the index disk, so it must cut a full checkpoint,
// and recovery must reproduce it.
func TestAddBatchDurable(t *testing.T) {
	segs := crashSegments(200, 14)
	for _, kind := range crashKinds {
		t.Run(kind.String(), func(t *testing.T) {
			wfs := NewMemWALFS()
			db, err := Open(kind, WithWALFS(wfs))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.AddBatch(segs); err != nil {
				t.Fatalf("AddBatch: %v", err)
			}
			// Incremental adds after the bulk build share the same log.
			if _, err := db.Add(Seg(10, 10, 20, 20)); err != nil {
				t.Fatal(err)
			}
			want := windowIDs(t, db, World())
			db2, _, err := RecoverFS(wfs)
			if err != nil {
				t.Fatalf("RecoverFS: %v", err)
			}
			if r := db2.CheckIntegrity(); !r.Healthy() {
				t.Fatalf("unhealthy: %v", r.Err())
			}
			if got := windowIDs(t, db2, World()); !sameIDs(got, want) {
				t.Errorf("recovered window: %d ids, want %d", len(got), len(want))
			}
		})
	}
}

// TestRetryWorkloadCompletes is the ISSUE's retry acceptance: a workload
// under nonzero read and write fault probabilities completes with zero
// user-visible errors, and the absorbed faults show up as retry counts
// in Metrics and QueryStats.
func TestRetryWorkloadCompletes(t *testing.T) {
	fp := NewFaultPolicy(FaultConfig{Seed: 21, ReadErrorProb: 0.25, WriteErrorProb: 0.25})
	// A tiny pool plus periodic cache drops forces real disk traffic, so
	// the probabilities bite.
	db, err := Open(RPlusTree,
		WithFaultPolicy(fp),
		WithPoolPages(8),
		WithRetryPolicy(&RetryPolicy{MaxAttempts: 64}))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range crashSegments(300, 22) {
		if _, err := db.Add(s); err != nil {
			t.Fatalf("Add under transient faults: %v", err)
		}
		if i%50 == 49 {
			if err := db.DropCaches(); err != nil {
				t.Fatalf("DropCaches under transient faults: %v", err)
			}
		}
	}
	var queryRetries uint64
	for i := 0; i < 20; i++ {
		if err := db.DropCaches(); err != nil {
			t.Fatalf("DropCaches under transient faults: %v", err)
		}
		st, err := db.WindowCtx(t.Context(), RectOf(int32(i*100), 0, int32(i*100+2000), 5000), func(SegmentID, Segment) bool { return true })
		if err != nil {
			t.Fatalf("window %d under transient faults: %v", i, err)
		}
		queryRetries += st.Retries
	}
	m := db.Metrics()
	if m.Retries == 0 {
		t.Error("Metrics.Retries = 0 under injected faults")
	}
	if fp.Injected() == 0 {
		t.Error("fault policy injected nothing; test proves nothing")
	}
	if queryRetries == 0 {
		t.Error("no query observed a retry in its QueryStats")
	}
	if r := db.CheckIntegrity(); !r.Healthy() {
		t.Fatalf("unhealthy after retried workload: %v", r.Err())
	}
}

// TestDegradedReadsAndScrub is the ISSUE's degraded-mode acceptance: a
// corrupted page yields partial results with SkippedPages populated
// (never a panic or silent wrong answer), and Scrub repairs it from the
// checkpoint + WAL.
func TestDegradedReadsAndScrub(t *testing.T) {
	for _, kind := range crashKinds {
		t.Run(kind.String(), func(t *testing.T) {
			wfs := NewMemWALFS()
			db, err := Open(kind, WithWALFS(wfs), WithDegradedReads(true))
			if err != nil {
				t.Fatal(err)
			}
			segs := crashSegments(150, 31)
			for _, s := range segs {
				if _, err := db.Add(s); err != nil {
					t.Fatal(err)
				}
			}
			want := windowIDs(t, db, World())
			if len(want) != len(segs) {
				t.Fatalf("baseline window returned %d ids", len(want))
			}
			// Push every page to disk, then silently corrupt one in-use
			// table page and one index page (bit flips under the CRC).
			if err := db.DropCaches(); err != nil {
				t.Fatal(err)
			}
			if err := db.table.Disk().CorruptPage(1, 77); err != nil {
				t.Fatal(err)
			}
			if err := db.pool.Disk().CorruptPage(0, 99); err != nil {
				t.Fatal(err)
			}
			var got []SegmentID
			st, err := db.WindowCtx(t.Context(), World(), func(id SegmentID, _ Segment) bool {
				got = append(got, id)
				return true
			})
			if err != nil {
				t.Fatalf("degraded window failed instead of degrading: %v", err)
			}
			if st.SkippedPages == 0 {
				t.Error("degraded query reported no skipped pages")
			}
			if len(got) >= len(want) {
				t.Errorf("degraded window returned %d ids over corrupt pages, baseline %d", len(got), len(want))
			}
			ix, tab := db.Quarantined()
			if len(ix)+len(tab) == 0 {
				t.Fatal("no pages quarantined after degraded query")
			}
			rep, err := db.Scrub()
			if err != nil {
				t.Fatalf("Scrub: %v", err)
			}
			if rep.Clean() {
				t.Fatal("scrub found nothing despite corruption")
			}
			if rep.Repaired == 0 || rep.Unrepairable != 0 {
				t.Fatalf("scrub repaired=%d unrepairable=%d, want everything repaired", rep.Repaired, rep.Unrepairable)
			}
			if r := db.CheckIntegrity(); !r.Healthy() {
				t.Fatalf("unhealthy after scrub: %v", r.Err())
			}
			if after := windowIDs(t, db, World()); !sameIDs(after, want) {
				t.Errorf("post-scrub window: %d ids, want %d", len(after), len(want))
			}
			ix, tab = db.Quarantined()
			if len(ix)+len(tab) != 0 {
				t.Errorf("quarantine not cleared after scrub: %v / %v", ix, tab)
			}
		})
	}
}

// TestDegradedOffFailsLoudly pins the inverse: without degraded mode a
// corrupt page is an error, not a silently smaller answer.
func TestDegradedOffFailsLoudly(t *testing.T) {
	db, err := Open(RStarTree)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range crashSegments(150, 32) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if err := db.table.Disk().CorruptPage(1, 5); err != nil {
		t.Fatal(err)
	}
	err = db.Window(World(), func(SegmentID, Segment) bool { return true })
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("window over corruption = %v, want ErrChecksum", err)
	}
}

// TestScrubRequiresWAL pins that Scrub without a log is a typed error.
func TestScrubRequiresWAL(t *testing.T) {
	db, err := Open(UniformGrid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Scrub(); !errors.Is(err, ErrNoWAL) {
		t.Errorf("Scrub = %v, want ErrNoWAL", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrNoWAL) {
		t.Errorf("Checkpoint = %v, want ErrNoWAL", err)
	}
}

// TestWALOnRealFiles exercises the os-backed WALFS end to end: WithWAL
// writes a checkpoint and log into a real directory, and Recover reopens
// the database from those files alone.
func TestWALOnRealFiles(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(KDBTree, WithWAL(dir))
	if err != nil {
		t.Fatalf("Open(WithWAL): %v", err)
	}
	segs := crashSegments(40, 41)
	for _, s := range segs {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	want := windowIDs(t, db, World())
	db2, rep, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.Transactions != len(segs) {
		t.Errorf("replayed %d transactions, want %d", rep.Transactions, len(segs))
	}
	if r := db2.CheckIntegrity(); !r.Healthy() {
		t.Fatalf("unhealthy: %v", r.Err())
	}
	if got := windowIDs(t, db2, World()); !sameIDs(got, want) {
		t.Errorf("recovered window: %d ids, want %d", len(got), len(want))
	}
}

var _ = store.ErrInjectedFault // keep the import if assertions change
