package segdb

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoLegacyOptionsConstruction is the vet-style gate finishing the
// *Options deprecation: no non-test code in the repository may construct
// the facade's Options struct for configuration — everything (the
// serving tier included) goes through the functional With* options, so
// Open's legacy Open(kind, &Options{...}) spelling survives only for
// out-of-tree source compatibility.
//
// The gate flags, in every non-test .go file of the module:
//
//   - &Options{...} / &segdb.Options{...} — taking the address of an
//     Options literal (the legacy configuration path);
//   - new(Options) / new(segdb.Options);
//   - segdb.Options{...} composite literals anywhere outside the root
//     package (value form included: out-of-facade code has no business
//     building the struct at all).
//
// The one legitimate in-facade value use — persist.go reconstructing the
// recorded Options fields while loading a saved image — is neither a
// pointer construction nor outside the root package, so it passes.
func TestNoLegacyOptionsConstruction(t *testing.T) {
	root, err := os.Getwd() // the root package's dir is the module root
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var offenders []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || name == "bin" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		inRootPkg := f.Name.Name == "segdb"
		// Resolve the local name(s) the module root is imported under.
		segdbNames := map[string]bool{}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != "segdb" {
				continue
			}
			name := "segdb"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			segdbNames[name] = true
		}
		// isOptionsType reports whether the expression names the facade's
		// Options type as seen from this file.
		isOptionsType := func(e ast.Expr) bool {
			switch e := e.(type) {
			case *ast.Ident:
				return inRootPkg && e.Name == "Options"
			case *ast.SelectorExpr:
				x, ok := e.X.(*ast.Ident)
				return ok && segdbNames[x.Name] && e.Sel.Name == "Options"
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if cl, ok := n.X.(*ast.CompositeLit); ok && isOptionsType(cl.Type) {
					offenders = append(offenders, fset.Position(n.Pos()).String()+": &Options{...} (use With* functional options)")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 && isOptionsType(n.Args[0]) {
					offenders = append(offenders, fset.Position(n.Pos()).String()+": new(Options) (use With* functional options)")
				}
			case *ast.CompositeLit:
				if !inRootPkg && isOptionsType(n.Type) {
					offenders = append(offenders, fset.Position(n.Pos()).String()+": segdb.Options{...} outside the facade (use With* functional options)")
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offenders {
		t.Errorf("legacy Options construction: %s", o)
	}
}
