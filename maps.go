package segdb

import (
	"fmt"
	"io"

	"segdb/internal/tiger"
	"segdb/internal/tigerline"
)

// MapData is a synthetic TIGER/Line-style polygonal map: a noded planar
// collection of road segments normalized to the 16K x 16K world.
type MapData struct {
	// Name of the county archetype.
	Name string
	// Class is "urban", "suburban" or "rural".
	Class string
	// Segments of the map, planar by construction.
	Segments []Segment
}

// CountyNames lists the six built-in synthetic counties standing in for
// the paper's Maryland TIGER/Line extracts (about 50,000 segments each).
func CountyNames() []string {
	var names []string
	for _, spec := range tiger.Counties() {
		names = append(names, spec.Name)
	}
	return names
}

// GenerateCounty deterministically generates one of the built-in counties
// by name (see CountyNames).
func GenerateCounty(name string) (*MapData, error) {
	spec, ok := tiger.CountyByName(name)
	if !ok {
		return nil, fmt.Errorf("segdb: unknown county %q (have %v)", name, CountyNames())
	}
	m, err := tiger.Generate(spec)
	if err != nil {
		return nil, err
	}
	return &MapData{Name: spec.Name, Class: spec.Kind.String(), Segments: m.Segments}, nil
}

// Load adds every segment of the map to the database, returning the
// assigned IDs (in input order). By default segments are inserted one at
// a time, reproducing the paper's build costs; with WithBulkLoad (and an
// empty database) the whole map goes through the bulk pipeline instead —
// same queries, far fewer build disk accesses. It holds the writer lock
// for the whole load, so queries never observe a half-loaded map.
func (db *DB) Load(m *MapData) ([]SegmentID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.opts.BulkLoad && db.table.Len() == 0 {
		return db.addBatchLocked(m.Segments)
	}
	return db.loadLocked(m)
}

func (db *DB) loadLocked(m *MapData) ([]SegmentID, error) {
	ids := make([]SegmentID, 0, len(m.Segments))
	for _, s := range m.Segments {
		id, err := db.addLocked(s)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	// One WAL commit seals the whole map: a crash mid-load rolls the
	// database back to its pre-load state.
	return ids, db.walCommit()
}

// ParseTIGER reads US Census TIGER/Line Record Type 1 data (the format
// the paper's maps came from), keeps the chains whose census feature
// class code starts with one of the prefixes (defaulting to "A", the road
// classes used in the paper), and normalizes them into the 16K x 16K
// world exactly as §6 describes: coordinates are scaled with respect to
// the minimum bounding square of the map.
func ParseTIGER(r io.Reader, cfccPrefixes ...string) (*MapData, error) {
	chains, err := tigerline.Parse(r)
	if err != nil {
		return nil, err
	}
	if len(cfccPrefixes) == 0 {
		cfccPrefixes = []string{"A"}
	}
	segs, err := tigerline.Normalize(tigerline.Filter(chains, cfccPrefixes...))
	if err != nil {
		return nil, err
	}
	return &MapData{Name: "TIGER import", Class: "imported", Segments: segs}, nil
}

// LoadPacked bulk-loads the map into an empty database through the bulk
// pipeline — Sort-Tile-Recursive packing for the R-tree kinds, a k-d
// partition pack for the R+-tree kinds, a single decomposition sweep for
// the PMR quadtree, and a one-pass fill for the grid — instead of
// one-at-a-time insertion: far fewer build disk accesses and tighter
// structures for every kind. (Before PR 5, only the two R-tree kinds
// were packed; every other kind silently fell back to incremental
// insertion. All six kinds now take the bulk path; there is no fallback
// here — use Load for the paper-exact incremental build.)
func (db *DB) LoadPacked(m *MapData) ([]SegmentID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := db.index.Table().Len(); n != 0 {
		return nil, fmt.Errorf("segdb: LoadPacked requires an empty database (have %d segments)", n)
	}
	return db.addBatchLocked(m.Segments)
}
