package segdb

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"segdb/internal/store"
)

// crashKinds are the index kinds the crash harness sweeps.
var crashKinds = []Kind{RStarTree, RPlusTree, PMRQuadtree, KDBTree, UniformGrid, ClassicRTree}

// crashSegments generates a small deterministic workload.
func crashSegments(n int, seed int64) []Segment {
	rng := rand.New(rand.NewSource(seed))
	segs := make([]Segment, n)
	for i := range segs {
		x := int32(rng.Intn(WorldSize - 600))
		y := int32(rng.Intn(WorldSize - 600))
		segs[i] = Seg(x, y, x+int32(rng.Intn(500))+1, y+int32(rng.Intn(500))+1)
	}
	return segs
}

// buildWithPolicy opens a database, attaches the policy, and adds
// segments until done or the first error.
func buildWithPolicy(t *testing.T, kind Kind, segs []Segment, p *store.FaultPolicy) (*DB, error) {
	t.Helper()
	db, err := Open(kind, nil)
	if err != nil {
		t.Fatalf("Open(%v): %v", kind, err)
	}
	db.SetFaultPolicy(p)
	for _, s := range segs {
		if _, err := db.Add(s); err != nil {
			return db, err
		}
	}
	return db, nil
}

// TestCrashSimulation builds each index kind under "crash after N writes"
// for a sweep of N, snapshots the halted disks, reloads, and requires one
// of exactly two outcomes: a clean typed error, or a database whose
// integrity check runs to completion. A panic anywhere fails the test —
// that is the property under test.
func TestCrashSimulation(t *testing.T) {
	segs := crashSegments(120, 99)
	for _, kind := range crashKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			// Fault-free instrumented run: total writes for build + save
			// bound the interesting crash points.
			counter := store.NewFaultPolicy(store.FaultConfig{})
			db, err := buildWithPolicy(t, kind, segs, counter)
			if err != nil {
				t.Fatalf("fault-free build: %v", err)
			}
			if err := db.Save(io.Discard); err != nil {
				t.Fatalf("fault-free save: %v", err)
			}
			total := counter.Writes()
			if total == 0 {
				t.Fatal("no writes observed")
			}
			stride := total / 20
			if stride == 0 {
				stride = 1
			}
			var points []uint64
			for n := uint64(1); n <= total; n += stride {
				points = append(points, n)
			}
			points = append(points, total+10) // survives: no crash fires

			for _, n := range points {
				pol := store.NewFaultPolicy(store.FaultConfig{Seed: int64(n), CrashAfterWrites: n})
				db, buildErr := buildWithPolicy(t, kind, segs, pol)
				var buf bytes.Buffer
				saveErr := buildErr
				if buildErr == nil {
					saveErr = db.Save(&buf)
				}
				if saveErr == nil {
					// Build and save survived; the image must load clean.
					if pol.Crashed() {
						t.Fatalf("N=%d: save succeeded on a crashed disk", n)
					}
					db2, err := Load(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatalf("N=%d: load of cleanly saved db: %v", n, err)
					}
					if rep := db2.CheckIntegrity(); !rep.Healthy() {
						t.Fatalf("N=%d: clean save, unhealthy reload: %v", n, rep.Err())
					}
					continue
				}
				if !errors.Is(saveErr, store.ErrInjectedFault) {
					t.Fatalf("N=%d: build/save failed with non-injected error: %v", n, saveErr)
				}
				// Crashed mid-way. Snapshot the durable state (the buffer
				// pools' unflushed dirty frames are the lost data) and
				// reload: either a typed error or a checkable structure,
				// never a panic.
				buf.Reset()
				if err := db.writeSnapshot(&buf); err != nil {
					t.Fatalf("N=%d: snapshot of crashed db: %v", n, err)
				}
				db2, err := Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					continue // corruption detected at load: good
				}
				rep := db2.CheckIntegrity()
				if rep.Healthy() {
					// The crash lost nothing that matters (e.g. it hit
					// during the final save flush of already-clean pages);
					// the structure must actually be usable.
					hits := 0
					if err := db2.Window(World(), func(SegmentID, Segment) bool {
						hits++
						return true
					}); err != nil {
						t.Fatalf("N=%d: healthy reload but window failed: %v", n, err)
					}
				}
				// An unhealthy report is corruption detected: also good.
			}
		})
	}
}

// TestUnflushedSnapshotDetected pins the most common crash outcome: a
// snapshot taken with dirty frames still in the buffer pools (the data a
// crash loses) must not reload as a silently healthy database — either
// Load fails or the integrity check reports the loss.
func TestUnflushedSnapshotDetected(t *testing.T) {
	segs := crashSegments(200, 7)
	db, err := Open(UniformGrid, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.writeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return // detected at load
	}
	if rep := db2.CheckIntegrity(); rep.Healthy() {
		t.Fatal("unflushed snapshot reloaded as healthy")
	}
}

// TestCrashSimulationBulk runs the crash sweep over the bulk-build
// pipeline: AddBatch on an empty database replaces the index disk
// wholesale, so the crash points cover the bottom-up builders and the
// disk hand-off, not the incremental insert path. The contract is the
// same: a clean typed error or a checkable structure, never a panic.
func TestCrashSimulationBulk(t *testing.T) {
	segs := crashSegments(400, 44)
	for _, kind := range crashKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			counter := store.NewFaultPolicy(store.FaultConfig{})
			db, err := Open(kind, nil)
			if err != nil {
				t.Fatalf("Open(%v): %v", kind, err)
			}
			db.SetFaultPolicy(counter)
			if _, err := db.AddBatch(segs); err != nil {
				t.Fatalf("fault-free bulk build: %v", err)
			}
			if err := db.Save(io.Discard); err != nil {
				t.Fatalf("fault-free save: %v", err)
			}
			total := counter.Writes()
			if total == 0 {
				t.Fatal("no writes observed")
			}
			stride := total / 20
			if stride == 0 {
				stride = 1
			}
			var points []uint64
			for n := uint64(1); n <= total; n += stride {
				points = append(points, n)
			}
			points = append(points, total+10)

			for _, n := range points {
				pol := store.NewFaultPolicy(store.FaultConfig{Seed: int64(n), CrashAfterWrites: n})
				db, err := Open(kind, nil)
				if err != nil {
					t.Fatalf("N=%d: Open: %v", n, err)
				}
				db.SetFaultPolicy(pol)
				var buf bytes.Buffer
				_, saveErr := db.AddBatch(segs)
				if saveErr == nil {
					saveErr = db.Save(&buf)
				}
				if saveErr == nil {
					if pol.Crashed() {
						t.Fatalf("N=%d: save succeeded on a crashed disk", n)
					}
					db2, err := Load(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatalf("N=%d: load of cleanly saved db: %v", n, err)
					}
					if rep := db2.CheckIntegrity(); !rep.Healthy() {
						t.Fatalf("N=%d: clean save, unhealthy reload: %v", n, rep.Err())
					}
					continue
				}
				if !errors.Is(saveErr, store.ErrInjectedFault) {
					t.Fatalf("N=%d: bulk build/save failed with non-injected error: %v", n, saveErr)
				}
				buf.Reset()
				if err := db.writeSnapshot(&buf); err != nil {
					t.Fatalf("N=%d: snapshot of crashed db: %v", n, err)
				}
				db2, err := Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					continue // corruption detected at load: good
				}
				rep := db2.CheckIntegrity()
				if rep.Healthy() {
					if err := db2.Window(World(), func(SegmentID, Segment) bool { return true }); err != nil {
						t.Fatalf("N=%d: healthy reload but window failed: %v", n, err)
					}
				}
			}
		})
	}
}
