package segdb

import (
	"bytes"
	"errors"
	"testing"

	"segdb/internal/store"
)

// TestBitFlipDetectedAtLoad saves a database, flips one bit inside a page
// of the image, and requires Load to fail with store.ErrChecksum naming
// the offending page.
func TestBitFlipDetectedAtLoad(t *testing.T) {
	db, err := Open(PMRQuadtree, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range crashSegments(80, 3) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	// The image ends with the index disk's last page, its 4-byte CRC, and
	// the 8-byte footer; byte len-13 is the final byte of that page.
	img[len(img)-13] ^= 0x40
	_, err = Load(bytes.NewReader(img))
	if !errors.Is(err, store.ErrChecksum) {
		t.Fatalf("Load of bit-flipped image = %v, want ErrChecksum", err)
	}
	var ce *store.ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("error does not name the page: %v", err)
	}
	if int(ce.Page) >= db.pool.Disk().PageCount() {
		t.Errorf("checksum error names page %d, disk has %d", ce.Page, db.pool.Disk().PageCount())
	}
}

// TestCheckIntegrityHealthy verifies a freshly built database of every
// kind passes the unified check.
func TestCheckIntegrityHealthy(t *testing.T) {
	segs := crashSegments(60, 5)
	for _, kind := range crashKinds {
		db, err := Open(kind, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			if _, err := db.Add(s); err != nil {
				t.Fatal(err)
			}
		}
		rep := db.CheckIntegrity()
		if !rep.Healthy() {
			t.Errorf("%v: %v", kind, rep.Err())
		}
		if rep.Err() != nil {
			t.Errorf("%v: Err() non-nil on healthy report", kind)
		}
		if rep.Segments != len(segs) || rep.Kind != kind {
			t.Errorf("%v: report facts %+v", kind, rep)
		}
	}
}

// TestCheckIntegrityFindsCorruption corrupts a live page behind the
// buffer pool's back and requires the unified check to surface it with
// the typed checksum error.
func TestCheckIntegrityFindsCorruption(t *testing.T) {
	db, err := Open(RStarTree, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range crashSegments(60, 11) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if err := db.pool.Disk().CorruptPage(0, 333); err != nil {
		t.Fatal(err)
	}
	rep := db.CheckIntegrity()
	if rep.Healthy() {
		t.Fatal("corrupted page not reported")
	}
	if !errors.Is(rep.Err(), store.ErrChecksum) {
		t.Fatalf("Err() = %v, want to wrap ErrChecksum", rep.Err())
	}
}

// TestCheckIntegrityAfterDeletes verifies the unified check still passes
// after deletions (the index count drops below the append-only table's —
// allowed; only index > table is drift).
func TestCheckIntegrityAfterDeletes(t *testing.T) {
	db, err := Open(UniformGrid, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ids []SegmentID
	for _, s := range crashSegments(40, 13) {
		id, err := db.Add(s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:10] {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if rep := db.CheckIntegrity(); !rep.Healthy() {
		t.Fatalf("unhealthy after deletes: %v", rep.Problems)
	}
}
